//! Regenerates Fig. 4: example DCT outcomes per result category.
//!
//! The paper shows four images: (a) a strictly correct result, (b) a
//! relaxed-correct result, (c) an SDC, and (d) the quality loss between (a)
//! and (b). Here we inject hand-picked faults into the DCT kernel and
//! report, per category, the observed PSNR against the uncompressed input —
//! the numbers behind the paper's pictures.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin fig4 [-- --scale small|default|paper]
//! ```

use gemfi::{FaultBehavior, FaultLocation, FaultSpec, FaultTiming};
use gemfi_bench::Args;
use gemfi_campaign::{prepare_workload, run_experiment, RunnerConfig};
use gemfi_workloads::dct::{input_pixel, Dct};
use gemfi_workloads::psnr::psnr_u8;

fn pixels(bytes: &[u8]) -> Vec<u8> {
    bytes.chunks_exact(8).map(|c| c[0]).collect()
}

fn main() {
    let args = Args::from_env();
    let dct = match args.scale() {
        gemfi_bench::Scale::Small => Dct { width: 16, height: 16 },
        gemfi_bench::Scale::Default => Dct::default(),
        gemfi_bench::Scale::Paper => Dct::paper(),
    };
    println!("Fig. 4: DCT result categories ({}x{} image)\n", dct.width, dct.height);
    let prepared = prepare_workload(&dct).expect("dct prepares");
    let input: Vec<u8> = (0..dct.height)
        .flat_map(|y| (0..dct.width).map(move |x| input_pixel(x, y) as u8))
        .collect();

    let golden_psnr = psnr_u8(&pixels(&prepared.golden.bytes), &input);
    println!("(a) strict-correct reference:      PSNR(input) = {golden_psnr:6.2} dB\n");

    // Memory-transaction faults corrupt a value that is definitely consumed
    // (the loaded DCT coefficient), giving clean category examples; the
    // dead-register case shows the non-propagated class.
    let mem_fault = |bit: u8, occ: u64| FaultSpec {
        location: FaultLocation::Mem { core: 0, target: gemfi::MemTarget::Load },
        thread: 0,
        timing: FaultTiming::Instructions(prepared.stage_events[3] / 2),
        behavior: FaultBehavior::Flip(bit),
        occurrences: occ,
    };
    let cases = [
        ("(b) relaxed correct (transient)", mem_fault(51, 1)),
        ("(c) SDC (intermittent exponent flips)", mem_fault(62, 4000)),
        (
            "(d) non-propagated (dead register)",
            FaultSpec {
                location: FaultLocation::FpReg { core: 0, reg: 25 },
                thread: 0,
                timing: FaultTiming::Instructions(prepared.stage_events[4] / 2),
                behavior: FaultBehavior::Flip(10),
                occurrences: 1,
            },
        ),
    ];

    let runner = RunnerConfig::default();
    gemfi_bench::rule(92);
    for (label, spec) in cases {
        let r = run_experiment(&prepared, &dct, spec, &runner);
        let (vs_input, vs_golden) = if r.output.len() == prepared.golden.bytes.len() {
            (
                psnr_u8(&pixels(&r.output), &input),
                psnr_u8(&pixels(&r.output), &pixels(&prepared.golden.bytes)),
            )
        } else {
            (f64::NAN, f64::NAN)
        };
        println!(
            "{label:<38} outcome={:<16} PSNR(input)={vs_input:>7.2} dB  PSNR(golden)={vs_golden:>7.2} dB",
            r.outcome.to_string()
        );
        println!("    fault: {spec}");
    }
    gemfi_bench::rule(92);
    println!("\nacceptance gate (paper): PSNR vs input > 30 dB = correct");
}
