//! `gemfi_worker` — a remote campaign worker: connects to a `gemfi_serve`
//! daemon, claims leased experiments, executes them locally and reports
//! results over the line-delimited JSON protocol (DESIGN.md §15).
//!
//! The worker holds nothing durable. It fetches each queue's checkpoint
//! image once (cached by digest), heartbeats its leases at a third of the
//! lease period, and abandons a window the moment heartbeats stop being
//! acknowledged — the server's reaper re-offers the experiment to the next
//! claimant. Worker death is therefore always safe, and restarting is
//! just re-running the binary.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin gemfi_worker -- \
//!     --connect 127.0.0.1:7401 [--name w1] \
//!     [--cpu o3|atomic|inorder|timing] \
//!     [--snapshot-ticks N --scratch <dir>] \
//!     [--connect-attempts N] [--reconnect-ms N]
//! ```
//!
//! `--snapshot-ticks N` enables periodic mid-run snapshots in `--scratch`:
//! a worker killed mid-experiment resumes that experiment from its last
//! snapshot on the next claim instead of replaying it from the campaign
//! checkpoint.

use gemfi_bench::{Args, Scale};
use gemfi_campaign::{run_socket_worker, RunnerConfig, SnapshotPolicy, WorkerOptions};
use gemfi_cpu::CpuKind;
use gemfi_workloads::Workload;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let Some(addr) = args.value_of("connect") else {
        eprintln!(
            "usage: gemfi_worker --connect <host:port> [--name <id>] \
             [--cpu o3|atomic|inorder|timing] [--snapshot-ticks N --scratch <dir>] \
             [--connect-attempts N] [--reconnect-ms N]"
        );
        std::process::exit(2);
    };
    let name = args
        .value_of("name")
        .map(str::to_string)
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let cpu = match args.value_of("cpu") {
        Some("atomic") => CpuKind::Atomic,
        Some("inorder") => CpuKind::InOrder,
        Some("timing") => CpuKind::Timing,
        _ => CpuKind::O3,
    };

    let mut opts = WorkerOptions::new(name.clone());
    opts.runner = RunnerConfig { inject_cpu: cpu, ..RunnerConfig::default() };
    opts.snapshot = SnapshotPolicy::every(args.number("snapshot-ticks", 0u64));
    opts.scratch_dir = args.value_of("scratch").map(Into::into);
    opts.connect_attempts = args.number("connect-attempts", 8u32);
    opts.reconnect_delay = Duration::from_millis(args.number("reconnect-ms", 50u64));
    if opts.snapshot.enabled() && opts.scratch_dir.is_none() {
        eprintln!("--snapshot-ticks needs --scratch <dir> for the snapshot files");
        std::process::exit(2);
    }

    // The server names a (workload, scale) pair; the worker re-creates the
    // guest from its own registry — only protocol artifacts cross the wire.
    let resolver = |workload: &str, scale: &str| -> Option<Box<dyn Workload>> {
        let scale = Scale::parse(scale)?;
        gemfi_bench::select_workloads(scale, Some(workload)).pop()
    };

    println!("worker {name} -> {addr}");
    match run_socket_worker(addr, &resolver, &opts) {
        Ok(report) => {
            println!(
                "campaign complete: {} claims, {} completed, {} failed, {} stale",
                report.claims, report.completed, report.failed, report.stale
            );
        }
        Err(e) => {
            eprintln!("worker lost the campaign: {e}");
            std::process::exit(1);
        }
    }
}
