//! `gemfi_serve` — the campaign server daemon: the paper's NoW spool share
//! lifted onto a socket (Sec. III-E, networked execution).
//!
//! Seeds one campaign queue per selected workload (fixed-n, adaptive, or
//! both), listens for remote `gemfi_worker` processes, streams leased
//! experiment windows to them, and folds results into the durable journal
//! as they arrive. Killing the daemon loses nothing: restart it with
//! `--resume` and it replays the journal, re-offering only the remainder.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin gemfi_serve -- \
//!     --share /tmp/campaign [--bind 127.0.0.1:0] \
//!     --workload pi[,dct,...] [--scale small|default|paper] \
//!     [--campaign N] [--adaptive] [--seed N] \
//!     [--lease-secs N] [--max-retries N] [--quota N] [--resume] \
//!     [--wait-secs N]
//! ```
//!
//! `--campaign N` adds a fixed-n queue (priority 10) per workload;
//! `--adaptive` adds a sequential-sampling queue (priority 5) named
//! `<workload>-adaptive`. Both may be given at once: the fixed queues then
//! drain first under the server's priority scheduler. The bound address is
//! printed as `listening on <addr>` for scripts to scrape (`--bind` with
//! port 0 picks an ephemeral port). Live metrics are one `STATUS` request
//! away — see DESIGN.md §15 for the wire protocol.

use gemfi_bench::Args;
use gemfi_campaign::{
    prepare_workload, AdaptiveConfig, CampaignServer, CellKind, FaultSampler, QueueKind,
    QueueReport, QueueSpec, ServerConfig,
};
use std::time::Duration;

fn queue_specs(args: &Args, seed: u64) -> Vec<QueueSpec> {
    let scale_label = args.value_of("scale").unwrap_or("small").to_string();
    let names = args.value_of("workload").unwrap_or("pi");
    let workloads = gemfi_bench::select_workloads(args.scale(), Some(names));
    if workloads.is_empty() {
        eprintln!("no workload matches `{names}` (known: dct jacobi pi knapsack deblock canneal)");
        std::process::exit(2);
    }
    let fixed_n: Option<usize> = args.value_of("campaign").map(|n| {
        n.parse().unwrap_or_else(|_| {
            eprintln!("--campaign expects an experiment count, got `{n}`");
            std::process::exit(2);
        })
    });
    let adaptive = args.has("adaptive").then(|| {
        let mut config = AdaptiveConfig {
            ci_halfwidth: args.number("ci-halfwidth", 0.05f64),
            min_n: args.number("min-n", 25u64),
            budget: args.number("budget", 0u64),
            batch: args.number("batch", 16u64),
            ..AdaptiveConfig::default()
        };
        if let Some(list) = args.value_of("cells") {
            config.cells = list
                .split(',')
                .map(|label| {
                    CellKind::parse(label.trim()).unwrap_or_else(|| {
                        eprintln!("unknown cell `{label}`");
                        std::process::exit(2);
                    })
                })
                .collect();
        }
        config
    });
    if fixed_n.is_none() && adaptive.is_none() {
        eprintln!("nothing to serve: give --campaign <n>, --adaptive, or both");
        std::process::exit(2);
    }

    let quota = args.number("quota", 0usize);
    let mut queues = Vec::new();
    for workload in &workloads {
        let prepared = prepare_workload(workload.as_ref()).unwrap_or_else(|e| {
            eprintln!("prepare {} failed: {e}", workload.name());
            std::process::exit(1);
        });
        if let Some(n) = fixed_n {
            let mut sampler = FaultSampler::new(seed, prepared.stage_events, 0, 0);
            let specs = (0..n).map(|_| sampler.sample_any()).collect();
            queues.push(QueueSpec {
                name: workload.name().to_string(),
                priority: args.number("priority", 10u32),
                quota,
                workload: workload.name().to_string(),
                scale: scale_label.clone(),
                prepared: prepared.clone(),
                kind: QueueKind::FixedN { specs },
            });
        }
        if let Some(config) = &adaptive {
            queues.push(QueueSpec {
                name: format!("{}-adaptive", workload.name()),
                priority: args.number("adaptive-priority", 5u32),
                quota,
                workload: workload.name().to_string(),
                scale: scale_label.clone(),
                prepared: prepared.clone(),
                kind: QueueKind::Adaptive { config: config.clone(), seed },
            });
        }
    }
    queues
}

fn print_queue(q: &QueueReport) {
    println!("\nqueue {}:", q.name);
    println!("{}", q.table);
    if let Some(adaptive) = &q.adaptive {
        println!("{adaptive}");
    }
    println!(
        "  resumed {} | retries {} | reclaimed leases {} | workers: {}",
        q.resumed,
        q.retries,
        q.reclaimed,
        q.per_worker.iter().map(|(w, n)| format!("{w}={n}")).collect::<Vec<_>>().join(" ")
    );
}

fn main() {
    let args = Args::from_env();
    let Some(share) = args.value_of("share") else {
        eprintln!(
            "usage: gemfi_serve --share <dir> [--bind addr:port] --workload <names> \
             [--campaign N] [--adaptive] [--seed N] [--scale small|default|paper] \
             [--lease-secs N] [--max-retries N] [--quota N] [--resume] [--wait-secs N]"
        );
        std::process::exit(2);
    };
    let seed = args.number("seed", 1u64);
    let queues = queue_specs(&args, seed);

    let config = ServerConfig {
        bind_addr: args.value_of("bind").unwrap_or("127.0.0.1:0").to_string(),
        lease: Duration::from_secs(args.number("lease-secs", 30u64)),
        max_retries: args.number("max-retries", 2u64),
        resume: args.has("resume"),
        ..ServerConfig::new(share)
    };

    let names: Vec<_> = queues.iter().map(|q| q.name.clone()).collect();
    let server = CampaignServer::start(config, queues).unwrap_or_else(|e| {
        eprintln!("server start failed: {e}");
        std::process::exit(1);
    });
    // Scripts scrape this line for the (possibly ephemeral) port.
    println!("listening on {}", server.addr());
    println!("queues: {} | seed {seed} | resume: {}", names.join(" "), args.has("resume"));

    let wait = Duration::from_secs(args.number("wait-secs", 3_600u64));
    let complete = server.wait_complete(wait);
    if complete {
        // Keep answering for a moment so polling workers read `Complete`
        // and exit cleanly instead of hitting connection-refused.
        std::thread::sleep(Duration::from_millis(args.number("linger-ms", 1_000u64)));
    }
    let report = server.shutdown().unwrap_or_else(|e| {
        eprintln!("server shutdown failed: {e}");
        std::process::exit(1);
    });
    for q in &report.queues {
        print_queue(q);
    }
    println!("\nwall {:.2?} | complete: {complete}", report.wall);
    if !complete {
        eprintln!("timed out after {wait:.0?}; journals kept — restart with --resume to finish");
        std::process::exit(4);
    }
}
