//! Regenerates Fig. 7: GemFI's overhead over the unmodified simulator.
//!
//! Exactly the paper's worst-case setup: fault injection is *activated*
//! between the `fi_activate_inst()` calls (all per-instruction GemFI
//! machinery runs — thread resolution, stage counting, queue scans) but the
//! fault list is empty, so application behavior is unchanged and wall
//! times are comparable. The baseline is the same machine monomorphized
//! over [`NoopHooks`] — the "unmodified gem5". The paper measures
//! −0.1%…3.3% with 95% confidence intervals.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin fig7 -- \
//!     [--scale small|default|paper] [--trials N] [--cpu o3|atomic|inorder]
//! ```

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_bench::Args;
use gemfi_campaign::stats::{mean_ci, Z_95};
use gemfi_cpu::{CpuKind, FaultHooks, NoopHooks};
use gemfi_sim::{Machine, RunExit};
use gemfi_workloads::{workload_machine_config, Workload};
use std::time::Instant;

/// Runs the workload to completion, returning the wall-time (seconds) of
/// the region between the activation markers (approximated by the whole
/// post-checkpoint run; the pre-kernel prefix is identical in both builds).
fn timed_run<H: FaultHooks>(workload: &dyn Workload, cpu: CpuKind, hooks: H) -> f64 {
    let guest = workload.build();
    let mut machine =
        Machine::boot(workload_machine_config(cpu), &guest.program, hooks).expect("workload boots");
    // Run up to the checkpoint marker (initialization — untimed).
    let exit = machine.run();
    assert_eq!(exit, RunExit::CheckpointRequest, "workloads checkpoint once");
    // Time the kernel region.
    let started = Instant::now();
    let mut exit = machine.run();
    while exit == RunExit::CheckpointRequest {
        exit = machine.run();
    }
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(exit, RunExit::Halted(0), "fault-free run must finish");
    elapsed
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.number("trials", 7);
    let cpu = match args.value_of("cpu") {
        Some("atomic") => CpuKind::Atomic,
        Some("inorder") => CpuKind::InOrder,
        Some("timing") => CpuKind::Timing,
        _ => CpuKind::O3, // the paper's high-overhead worst case
    };
    let workloads = gemfi_bench::select_workloads(args.scale(), args.value_of("workloads"));

    println!("Fig. 7: GemFI overhead vs unmodified simulator ({cpu} model, {trials} trials)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12}",
        "workload", "base (ms)", "gemfi (ms)", "overhead", "95% CI"
    );
    gemfi_bench::rule(62);

    for workload in &workloads {
        // Warm up (page cache, JIT-free but allocator warm).
        timed_run(workload.as_ref(), cpu, NoopHooks);
        let mut base = Vec::with_capacity(trials);
        let mut fi = Vec::with_capacity(trials);
        for _ in 0..trials {
            base.push(timed_run(workload.as_ref(), cpu, NoopHooks));
            fi.push(timed_run(workload.as_ref(), cpu, GemFiEngine::new(FaultConfig::empty())));
        }
        let (mb, _) = mean_ci(&base, Z_95);
        let (mf, _) = mean_ci(&fi, Z_95);
        // CI of the per-trial overhead ratios.
        let ratios: Vec<f64> = base.iter().zip(&fi).map(|(b, f)| (f - b) / b * 100.0).collect();
        let (overhead, ci) = mean_ci(&ratios, Z_95);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>9.2}% {:>10.2}pp",
            workload.name(),
            mb * 1e3,
            mf * 1e3,
            overhead,
            ci
        );
    }
    gemfi_bench::rule(62);
    println!("\npaper reference: overhead between -0.1% and 3.3% across benchmarks");
}
