//! Ablation of the Sec. III-C optimization: resolving the running thread's
//! `ThreadEnabledFault` through the per-core pointer cache (refreshed only
//! on context switches) versus a hash-table lookup on every simulated
//! event. The paper credits this cache with keeping GemFI's per-tick cost
//! negligible; this benchmark quantifies the claim on our engine.

use gemfi::engine::EngineConfig;
use gemfi::{FaultConfig, GemFiEngine};
use gemfi_bench::time_it;
use gemfi_cpu::CpuKind;
use gemfi_sim::{Machine, RunExit};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

fn run_with_cache(pcb_pointer_cache: bool) {
    let w = MonteCarloPi { points: 400, init_spins: 100, ..MonteCarloPi::default() };
    let guest = w.build();
    let engine = GemFiEngine::with_config(
        FaultConfig::empty(),
        EngineConfig { pcb_pointer_cache, cores: 1 },
    );
    let mut m = Machine::boot(workload_machine_config(CpuKind::Atomic), &guest.program, engine)
        .expect("boots");
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));
}

fn main() {
    println!("ablation_pcb_cache");
    time_it("pointer_cache", 20, || run_with_cache(true));
    time_it("hash_every_event", 20, || run_with_cache(false));
}
