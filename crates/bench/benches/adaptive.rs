//! Adaptive-campaign ablation: sequential sampling with per-cell early
//! stopping versus the fixed-n Leveugle sizing, measured as experiments
//! needed to decide every cell of a mixed campaign.
//!
//! The campaign deliberately mixes *lopsided* cells (the cache-array
//! families, whose dominant outcome rate sits near 1 and whose Wilson CI
//! therefore tightens in a few dozen samples) with *high-variance* cells
//! (pc and the FP bank, whose 5-8% minority classes need ~3x the samples
//! before every CI closes). The fixed-n arm spends the worst-case p=0.5
//! sizing on every cell; the sequential arm stops each cell the moment all
//! five outcome-rate CIs reach the same target half-width, and the saved
//! budget flows to the cells that still need it. Cells whose rates sit at
//! p~=0.5 (decode, fetch, execute on this kernel) cost the full fixed-n in
//! *both* arms — sequential sampling converges to the Leveugle sizing
//! there by construction; pass `--cells decode` to see the boundary case.
//!
//! Both arms chase the *same* statistical target (z, half-width), and the
//! bench asserts the early stopping is honest: for every early-stopped
//! cell, the adaptive arm's Wilson CI must overlap the fixed-n arm's
//! Wilson CI on every outcome class — the two estimates are statistically
//! indistinguishable. The experiment counts on both arms are deterministic
//! functions of the seed — the gated ratio carries no timing noise at all.
//!
//! Options: `--size N` (DCT image edge, multiple of 8, default 8),
//! `--ci-halfwidth H` (default 0.05), `--min-n N` (default 25), `--batch N`
//! (default 16), `--seed N` (default 9), `--cells a,b,...` (default the
//! committed mixed campaign), `--out PATH` (default `BENCH_adaptive.json`).

use gemfi::Outcome;
use gemfi_bench::Args;
use gemfi_campaign::fork::{run_campaign_forked, ForkConfig};
use gemfi_campaign::{
    leveugle_sample_size, prepare_workload, run_campaign_adaptive, wilson_interval, AdaptiveConfig,
    CellKind, FaultSampler, OutcomeTable, RunnerConfig, Z_95,
};
use gemfi_cpu::CpuKind;
use gemfi_workloads::dct::Dct;

/// The committed mixed campaign: cache families are lopsided (dominant
/// outcome near 100%); pc and the FP bank carry 5-8% minority classes and
/// need roughly triple the samples before every CI closes.
const DEFAULT_CELLS: &str = "l1i-cache,l1d-cache,l2-cache,fp-reg,pc";

/// Independent seed stream for the fixed-n arm, so the two arms draw
/// independent samples of the same fault space.
const FIXED_ARM_SALT: u64 = 0x5bd1_e995;

struct CellRow {
    cell: String,
    population: u64,
    fixed_n: u64,
    adaptive_n: u64,
    decision: String,
    max_halfwidth: f64,
    ci_overlaps_fixed: bool,
}

fn json_report(args: &BenchArgs, rows: &[CellRow], rounds: u64, ratio: f64) -> String {
    let fixed_total: u64 = rows.iter().map(|r| r.fixed_n).sum();
    let adaptive_total: u64 = rows.iter().map(|r| r.adaptive_n).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"adaptive\",\n  \"workload\": \"dct\",\n");
    out.push_str(&format!(
        "  \"size\": {},\n  \"seed\": {},\n  \"z\": {:.4},\n  \"ci_halfwidth\": {},\n",
        args.size, args.seed, Z_95, args.ci_halfwidth
    ));
    out.push_str(&format!("  \"min_n\": {},\n  \"batch\": {},\n", args.min_n, args.batch));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"population\": {}, \"fixed_n\": {}, \"adaptive_n\": {}, \
             \"decision\": \"{}\", \"max_halfwidth\": {:.4}, \"ci_overlaps_fixed\": {}}}{}\n",
            r.cell,
            r.population,
            r.fixed_n,
            r.adaptive_n,
            r.decision,
            r.max_halfwidth,
            r.ci_overlaps_fixed,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"fixed_total\": {fixed_total},\n  \"adaptive_total\": {adaptive_total},\n"
    ));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"speedup\": {{\"experiments_to_decision\": {ratio:.3}}}\n}}\n"));
    out
}

struct BenchArgs {
    size: usize,
    seed: u64,
    ci_halfwidth: f64,
    min_n: u64,
    batch: u64,
}

fn main() {
    let args = Args::from_env();
    let bench = BenchArgs {
        size: args.number("size", 8usize),
        seed: args.number("seed", 9u64),
        ci_halfwidth: args.number("ci-halfwidth", 0.05f64),
        min_n: args.number("min-n", 25u64),
        batch: args.number("batch", 16u64),
    };
    let out_path = args.value_of("out").unwrap_or("BENCH_adaptive.json").to_string();
    let cells: Vec<CellKind> = args
        .value_of("cells")
        .unwrap_or(DEFAULT_CELLS)
        .split(',')
        .map(|label| CellKind::parse(label.trim()).expect("known cell label"))
        .collect();

    let workload = Dct { width: bench.size, height: bench.size };
    // Atomic both sides: the ablation compares *how many* experiments each
    // arm needs, not per-experiment speed, so the fastest conformant model
    // keeps the committed run cheap.
    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };
    let fork = ForkConfig::default();
    let prepared = prepare_workload(&workload).expect("workload prepares");

    let config = AdaptiveConfig {
        ci_halfwidth: bench.ci_halfwidth,
        min_n: bench.min_n,
        batch: bench.batch,
        budget: 0,
        cells: cells.clone(),
        ..AdaptiveConfig::default()
    };

    // Fixed-n arm: the worst-case Leveugle sizing (p = 0.5) per cell at the
    // same confidence target, on an independent draw stream.
    let mut fixed_tables: Vec<(u64, u64, OutcomeTable)> = Vec::new();
    for (i, kind) in cells.iter().enumerate() {
        let mut sampler =
            FaultSampler::for_cell(bench.seed ^ FIXED_ARM_SALT, i, prepared.stage_events);
        let population = kind.population(&sampler);
        let n = leveugle_sample_size(population, bench.ci_halfwidth, Z_95, 0.5);
        let specs: Vec<_> = (0..n).map(|_| kind.draw(&mut sampler)).collect();
        let table: OutcomeTable = run_campaign_forked(&prepared, &workload, &specs, &runner, &fork)
            .iter()
            .map(|r| r.outcome)
            .collect();
        println!("fixed    {kind:<12} n={n:<5} {table}");
        fixed_tables.push((population, n, table));
    }

    // Sequential arm: same cells, same target, draw-on-demand.
    let adaptive =
        run_campaign_adaptive(&prepared, &workload, &runner, Some(&fork), &config, bench.seed);
    assert_eq!(
        adaptive.table.count(Outcome::Infrastructure),
        0,
        "adaptive arm hit infrastructure failures — counts would not be comparable"
    );

    let mut rows = Vec::new();
    let mut all_inside = true;
    for (report, (population, fixed_n, fixed_table)) in adaptive.cells.iter().zip(&fixed_tables) {
        // Honesty check: an early-stopped cell's rates must be statistically
        // indistinguishable from the fixed-n estimate — the two arms' Wilson
        // CIs overlap on every outcome class. (A point-in-CI test is too
        // strict at boundary rates: 48/48 non-propagated gives a point rate
        // of exactly 1.0, outside a fixed CI whose upper bound is 0.999
        // because the larger sample caught one rare SDC.)
        let mut inside = true;
        if report.decision.is_decided() {
            for outcome in Outcome::ALL.iter().filter(|o| o.is_experiment_outcome()) {
                let cell_table = report.stats.table();
                let (a_lo, a_hi) = wilson_interval(cell_table.count(*outcome), report.n, Z_95);
                let (f_lo, f_hi) =
                    wilson_interval(fixed_table.count(*outcome), fixed_table.total(), Z_95);
                const EPS: f64 = 1e-9;
                if a_lo > f_hi + EPS || f_lo > a_hi + EPS {
                    println!(
                        "  MISMATCH {} {outcome}: adaptive CI ({a_lo:.3}, {a_hi:.3}) disjoint \
                         from fixed CI ({f_lo:.3}, {f_hi:.3})",
                        report.cell
                    );
                    inside = false;
                }
            }
        }
        all_inside &= inside;
        println!(
            "adaptive {:<12} n={:<5} {:<13} max±{:.3} {}",
            report.cell.to_string(),
            report.n,
            report.decision.to_string(),
            report.max_halfwidth,
            report.stats.table()
        );
        rows.push(CellRow {
            cell: report.cell.to_string(),
            population: *population,
            fixed_n: *fixed_n,
            adaptive_n: report.drawn,
            decision: report.decision.to_string(),
            max_halfwidth: report.max_halfwidth,
            ci_overlaps_fixed: inside,
        });
    }
    assert!(
        all_inside,
        "an early-stopped cell's outcome CI is disjoint from the fixed-n CI — \
         sequential stopping is biasing the estimates"
    );

    let fixed_total: u64 = rows.iter().map(|r| r.fixed_n).sum();
    let ratio = fixed_total as f64 / adaptive.experiments as f64;
    println!(
        "\nexperiments_to_decision        {ratio:.2}x  ({} fixed vs {} adaptive, {} rounds)",
        fixed_total, adaptive.experiments, adaptive.rounds
    );

    let report = json_report(&bench, &rows, adaptive.rounds, ratio);
    std::fs::write(&out_path, &report).expect("write BENCH_adaptive.json");
    println!("\nwrote {out_path}");
}
