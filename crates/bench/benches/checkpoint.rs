//! Benchmarks of the checkpoint machinery behind Fig. 8: snapshot capture,
//! binary encode/decode (the network-share objects), and restore-and-resume
//! versus re-simulating initialization from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_isa::codec::Codec;
use gemfi_sim::{Checkpoint, Machine, RunExit};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

fn machine_at_checkpoint() -> (Machine<NoopHooks>, Checkpoint) {
    let w = MonteCarloPi { points: 200, init_spins: 20_000, ..MonteCarloPi::default() };
    let guest = w.build();
    let mut m = Machine::boot(workload_machine_config(CpuKind::Atomic), &guest.program, NoopHooks)
        .expect("boots");
    assert_eq!(m.run(), RunExit::CheckpointRequest);
    let c = m.checkpoint();
    (m, c)
}

fn bench_checkpoint(c: &mut Criterion) {
    let (_, ckpt) = machine_at_checkpoint();
    let bytes = ckpt.to_bytes();

    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(20);
    group.bench_function("capture", |b| {
        let (m, _) = machine_at_checkpoint();
        b.iter(|| m.checkpoint())
    });
    group.bench_function("encode", |b| b.iter(|| ckpt.to_bytes()));
    group.bench_function("decode", |b| b.iter(|| Checkpoint::from_bytes(&bytes).unwrap()));
    group.bench_function("restore_and_finish", |b| {
        b.iter(|| {
            let mut m = Machine::restore(&ckpt, None, NoopHooks);
            assert_eq!(m.run(), RunExit::Halted(0));
        })
    });
    group.bench_function("reboot_and_finish", |b| {
        // The Fig. 8 baseline: pay initialization every time.
        let w = MonteCarloPi { points: 200, init_spins: 20_000, ..MonteCarloPi::default() };
        let guest = w.build();
        b.iter(|| {
            let mut m = Machine::boot(
                workload_machine_config(CpuKind::Atomic),
                &guest.program,
                NoopHooks,
            )
            .expect("boots");
            assert_eq!(m.run(), RunExit::CheckpointRequest);
            assert_eq!(m.run(), RunExit::Halted(0));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
