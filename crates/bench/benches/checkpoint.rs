//! Benchmarks of the checkpoint machinery behind Fig. 8: snapshot capture,
//! binary encode/decode (the network-share objects), and restore-and-resume
//! versus re-simulating initialization from scratch.

use gemfi_bench::time_it;
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_isa::codec::Codec;
use gemfi_sim::{Checkpoint, Machine, RunExit};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

fn machine_at_checkpoint() -> (Machine<NoopHooks>, Checkpoint) {
    let w = MonteCarloPi { points: 200, init_spins: 20_000, ..MonteCarloPi::default() };
    let guest = w.build();
    let mut m = Machine::boot(workload_machine_config(CpuKind::Atomic), &guest.program, NoopHooks)
        .expect("boots");
    assert_eq!(m.run(), RunExit::CheckpointRequest);
    let c = m.checkpoint();
    (m, c)
}

fn main() {
    let (m, ckpt) = machine_at_checkpoint();
    let bytes = ckpt.to_bytes();

    println!("checkpoint");
    time_it("capture", 20, || {
        let _ = m.checkpoint();
    });
    time_it("encode", 20, || {
        let _ = ckpt.to_bytes();
    });
    time_it("decode", 20, || {
        let _ = Checkpoint::from_bytes(&bytes).unwrap();
    });
    time_it("restore_and_finish", 20, || {
        let mut m = Machine::restore(&ckpt, None, NoopHooks);
        assert_eq!(m.run(), RunExit::Halted(0));
    });
    // The Fig. 8 baseline: pay initialization every time.
    let w = MonteCarloPi { points: 200, init_spins: 20_000, ..MonteCarloPi::default() };
    let guest = w.build();
    time_it("reboot_and_finish", 20, || {
        let mut m =
            Machine::boot(workload_machine_config(CpuKind::Atomic), &guest.program, NoopHooks)
                .expect("boots");
        assert_eq!(m.run(), RunExit::CheckpointRequest);
        assert_eq!(m.run(), RunExit::Halted(0));
    });
}
