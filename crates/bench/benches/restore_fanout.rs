//! Checkpoint fan-out ablation: copy-on-write paged restores versus flat
//! deep-copy restores (`MemConfig.cow` off), measured as campaign
//! experiments per second from one shared checkpoint.
//!
//! This is the Fig. 3 execution pattern — one snapshot, thousands of short
//! experiments — where restore cost is pure overhead. With CoW paging a
//! restore bumps page refcounts (O(page-table)); the flat baseline copies
//! all of guest physical memory per experiment (O(memory size)). Both modes
//! run the *same* experiment specs and must classify every one identically:
//! the clone policy is a performance knob, not a semantic one.
//!
//! Options: `--experiments N` (experiments per timing sample, default 40),
//! `--points N` (Monte-Carlo kernel size, default 120), `--samples N`
//! (timing samples per mode, default 5), `--out PATH` (JSON report path,
//! default `BENCH_cow_restore.json`).

use gemfi::{FaultBehavior, FaultLocation, FaultSpec, FaultTiming, Outcome};
use gemfi_bench::{time_it_secs, Args};
use gemfi_campaign::{prepare_workload_with, run_experiment, PreparedWorkload, RunnerConfig};
use gemfi_cpu::CpuKind;
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

fn prepare(workload: &dyn Workload, cow: bool) -> PreparedWorkload {
    let mut config = workload_machine_config(CpuKind::Atomic);
    config.mem.cow = cow;
    prepare_workload_with(workload, config).expect("workload prepares")
}

/// Deterministic fault population spread across the kernel: register bit
/// flips at evenly spaced instruction counts. The specs are identical in
/// both modes, so the outcome vectors must be too.
fn fault_population(prepared: &PreparedWorkload, experiments: usize) -> Vec<FaultSpec> {
    let committed = prepared.stage_events[4].max(experiments as u64);
    (0..experiments)
        .map(|i| FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: (i % 24) as u8 },
            thread: 0,
            timing: FaultTiming::Instructions(1 + (i as u64 * committed) / experiments as u64),
            behavior: FaultBehavior::Flip((i % 48) as u8),
            occurrences: 1,
        })
        .collect()
}

fn run_campaign(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
) -> Vec<Outcome> {
    specs.iter().map(|&spec| run_experiment(prepared, workload, spec, runner).outcome).collect()
}

struct Mode {
    cow: bool,
    median_secs: f64,
    min_secs: f64,
    experiments: usize,
    owned_pages: usize,
    total_pages: usize,
}

impl Mode {
    fn eps(&self) -> f64 {
        self.experiments as f64 / self.median_secs
    }
}

fn json_report(samples: usize, points: u64, modes: &[Mode; 2]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cow_restore_fanout\",\n  \"workload\": \"pi\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n  \"points\": {points},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cow\": {}, \"experiments\": {}, \"median_secs\": {:.6}, \
             \"min_secs\": {:.6}, \"experiments_per_sec\": {:.2}, \
             \"checkpoint_owned_pages\": {}, \"checkpoint_total_pages\": {}}}{}\n",
            m.cow,
            m.experiments,
            m.median_secs,
            m.min_secs,
            m.eps(),
            m.owned_pages,
            m.total_pages,
            if i + 1 < modes.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("  ],\n  \"speedup\": {:.3}\n}}\n", modes[0].eps() / modes[1].eps()));
    out
}

fn main() {
    let args = Args::from_env();
    let experiments = args.number("experiments", 40usize);
    let points = args.number("points", 120u64);
    let samples = args.number("samples", 5usize);
    let out_path = args.value_of("out").unwrap_or("BENCH_cow_restore.json").to_string();

    let workload = MonteCarloPi { points, init_spins: 100, ..MonteCarloPi::default() };
    // Atomic-only runs keep the kernel cheap, so the measurement isolates
    // what the ablation changes: per-experiment restore cost.
    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };

    println!("restore_fanout ({experiments} experiments/sample, pi --points {points})");
    let mut modes = Vec::new();
    let mut outcomes: Vec<Vec<Outcome>> = Vec::new();
    for cow in [true, false] {
        let prepared = prepare(&workload, cow);
        let specs = fault_population(&prepared, experiments);
        outcomes.push(run_campaign(&prepared, &workload, &specs, &runner));
        let label = format!("fanout_cow_{}", if cow { "on" } else { "off" });
        let (median_secs, min_secs) = time_it_secs(&label, samples, || {
            run_campaign(&prepared, &workload, &specs, &runner);
        });
        let (owned_pages, total_pages) = prepared.checkpoint.mem().page_footprint();
        modes.push(Mode { cow, median_secs, min_secs, experiments, owned_pages, total_pages });
    }

    assert_eq!(
        outcomes[0], outcomes[1],
        "clone policy changed experiment outcomes — CoW is no longer transparent"
    );

    let modes: [Mode; 2] = modes.try_into().ok().expect("two modes");
    println!(
        "speedup_cow_restore                {:.2}x  ({:.1} vs {:.1} experiments/sec)",
        modes[0].eps() / modes[1].eps(),
        modes[0].eps(),
        modes[1].eps(),
    );

    let report = json_report(samples, points, &modes);
    std::fs::write(&out_path, &report).expect("write BENCH_cow_restore.json");
    println!("\nwrote {out_path}");
}
