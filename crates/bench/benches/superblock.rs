//! Ablation for the superblock translation cache (PR 8).
//!
//! The dormant fast-forward — the post-fault stretch that dominates every
//! experiment's watchdog budget — steps the Atomic model one instruction at
//! a time even with hooks elided. The superblock cache pre-translates
//! straight-line guest regions into flat vectors of pre-resolved micro-ops
//! and lets the sprint execute whole blocks per dispatch. This bench
//! measures that fast path against the per-instruction sprint in the two
//! dormant states:
//!
//! * `nofi` — no engine at all (`NoopHooks`): dormant from the first tick,
//!   the entire run is sprintable.
//! * `dormant` — one transient `Xor(0)` execute fault that fires shortly
//!   after activation (corrupting nothing, but producing a real
//!   `InjectionRecord`): once served, the engine is fully dormant and the
//!   rest of the run fast-forwards.
//!
//! Each configuration runs with the superblock knob on and off; the two
//! runs must agree on the *entire* outcome vector — exit, full
//! [`ArchState`], guest output, injection records, and committed
//! instruction count — proving the translation cache architecturally
//! invisible. The knob-on run must actually execute translated micro-ops
//! and the knob-off run must execute none, so the ablation cannot silently
//! measure the same path twice. Results (instructions/sec and on/off
//! speedups) are written to `BENCH_superblock.json` and the
//! `atomic_dormant` ratio is floored by `benches/thresholds.json`.
//!
//! Options: `--samples N` (default 10), `--points N` (Monte-Carlo points,
//! default 20000), `--out PATH` (default `BENCH_superblock.json`).

use gemfi::{
    FaultBehavior, FaultConfig, FaultLocation, FaultSpec, FaultTiming, GemFiEngine, InjectionRecord,
};
use gemfi_bench::{time_it_secs, Args};
use gemfi_cpu::{CpuKind, FaultHooks, NoopHooks};
use gemfi_isa::ArchState;
use gemfi_sim::{Machine, MachineConfig, RunExit};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    NoFi,
    Dormant,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::NoFi => "nofi",
            Scenario::Dormant => "dormant",
        }
    }

    /// The fault population realizing this engine state.
    fn faults(self) -> Vec<FaultSpec> {
        match self {
            Scenario::NoFi => Vec::new(),
            // Fires at the 10th post-activation execute event. Xor(0)
            // leaves the value intact, so the run's architecture is
            // untouched — but the injection is served and recorded, and
            // from then on the engine is fully dormant.
            Scenario::Dormant => vec![FaultSpec {
                location: FaultLocation::Execute { core: 0 },
                thread: 0,
                timing: FaultTiming::Instructions(10),
                behavior: FaultBehavior::Xor(0),
                occurrences: 1,
            }],
        }
    }
}

/// Everything the translation cache must leave bit-identical.
#[derive(Debug, PartialEq)]
struct OutcomeVector {
    exit: RunExit,
    arch: ArchState,
    output: Vec<u8>,
    records: Vec<InjectionRecord>,
    instret: u64,
    tick: u64,
}

fn config(superblock: bool) -> MachineConfig {
    let mut cfg = workload_machine_config(CpuKind::Atomic);
    cfg.elide = true;
    cfg.mem.superblock = superblock;
    cfg
}

fn drive<H: FaultHooks>(m: &mut Machine<H>) -> RunExit {
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    exit
}

/// One full run; returns the outcome vector plus the count of micro-ops the
/// run committed through translated superblocks.
fn run_once(pi: &MonteCarloPi, scenario: Scenario, superblock: bool) -> (OutcomeVector, u64) {
    let guest = pi.build();
    let cfg = config(superblock);
    let (exit, arch, output, records, instret, tick, uops) = if scenario == Scenario::NoFi {
        let mut m = Machine::boot(cfg, &guest.program, NoopHooks).expect("boots");
        let exit = drive(&mut m);
        let output = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap_or_default();
        let uops = m.mem().stats().superblock.uops_executed;
        (exit, m.arch().clone(), output, Vec::new(), m.instret(), m.tick(), uops)
    } else {
        let engine = GemFiEngine::new(FaultConfig::from_specs(scenario.faults()));
        let mut m = Machine::boot(cfg, &guest.program, engine).expect("boots");
        let exit = drive(&mut m);
        let output = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap_or_default();
        let uops = m.mem().stats().superblock.uops_executed;
        (exit, m.arch().clone(), output, m.hooks().records().to_vec(), m.instret(), m.tick(), uops)
    };
    (OutcomeVector { exit, arch, output, records, instret, tick }, uops)
}

struct Measurement {
    scenario: Scenario,
    superblock: bool,
    median_secs: f64,
    min_secs: f64,
    instructions: u64,
    uops: u64,
}

impl Measurement {
    fn ips(&self) -> f64 {
        self.instructions as f64 / self.median_secs
    }
}

fn json_report(samples: usize, points: u64, results: &[Measurement]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"superblock\",\n  \"workload\": \"pi\",\n  \"cpu\": \"atomic\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n  \"points\": {points},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"superblock\": {}, \
             \"median_secs\": {:.6}, \"min_secs\": {:.6}, \"instructions\": {}, \
             \"superblock_uops\": {}, \"instructions_per_sec\": {:.0}}}{}\n",
            r.scenario.name(),
            r.superblock,
            r.median_secs,
            r.min_secs,
            r.instructions,
            r.uops,
            r.ips(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"speedup\": {");
    let mut first = true;
    for pair in results.chunks(2) {
        let [on, off] = pair else { continue };
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"atomic_{}\": {:.3}", on.scenario.name(), on.ips() / off.ips()));
    }
    out.push_str("}\n}\n");
    out
}

fn main() {
    let args = Args::from_env();
    let samples = args.number("samples", 10usize);
    let points = args.number("points", 20_000u64);
    let out_path = args.value_of("out").unwrap_or("BENCH_superblock.json").to_string();
    let pi = MonteCarloPi { points, init_spins: 100, ..MonteCarloPi::default() };

    println!("superblock ablation (pi, {points} points, atomic)\n");
    let mut results = Vec::new();
    for scenario in [Scenario::NoFi, Scenario::Dormant] {
        // Architectural invisibility first: both knob positions must
        // produce the same outcome vector, bit for bit — and the ablation
        // must be real (translated micro-ops on, none off).
        let (on, on_uops) = run_once(&pi, scenario, true);
        let (off, off_uops) = run_once(&pi, scenario, false);
        assert_eq!(
            on,
            off,
            "{}: superblock execution must be architecturally invisible",
            scenario.name()
        );
        assert_eq!(on.exit, RunExit::Halted(0), "{}", scenario.name());
        assert!(on_uops > 0, "{}: knob-on run executed no superblock uops", scenario.name());
        assert_eq!(off_uops, 0, "{}: knob-off run touched superblocks", scenario.name());
        if scenario == Scenario::Dormant {
            assert_eq!(on.records.len(), 1, "harmless fault must fire and be logged");
        } else {
            assert!(on.records.is_empty(), "{}: no fault may fire", scenario.name());
        }

        for superblock in [true, false] {
            let label = format!(
                "atomic_{}_{}",
                scenario.name(),
                if superblock { "superblock" } else { "stepped" }
            );
            let (median_secs, min_secs) = time_it_secs(&label, samples, || {
                run_once(&pi, scenario, superblock);
            });
            results.push(Measurement {
                scenario,
                superblock,
                median_secs,
                min_secs,
                instructions: on.instret,
                uops: if superblock { on_uops } else { off_uops },
            });
        }
    }

    println!();
    for pair in results.chunks(2) {
        let [on, off] = pair else { continue };
        println!(
            "{:<32} {:.2}x  ({:.0} vs {:.0} instructions/sec)",
            format!("speedup_atomic_{}", on.scenario.name()),
            on.ips() / off.ips(),
            on.ips(),
            off.ips(),
        );
    }

    let report = json_report(samples, points, &results);
    std::fs::write(&out_path, &report).expect("write BENCH_superblock.json");
    println!("\nwrote {out_path}");
}
