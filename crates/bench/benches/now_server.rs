//! Spool-vs-socket transport ablation: the same fixed-n campaign executed
//! once over the NoW spool share (`run_campaign_now`, worker threads
//! claiming lease files directly) and once over the campaign server
//! (`CampaignServer` + `run_socket_worker` fleets on localhost TCP).
//!
//! Both arms run the identical spec list with the same worker count, so the
//! measured gap is pure transport overhead: line-delimited JSON framing,
//! per-lease heartbeat connections, and the checkpoint blob fetch, against
//! the spool's rename-based claims on a shared filesystem. Experiment
//! execution dominates at paper scale — the committed report documents that
//! the socket backend's throughput stays within noise of the spool, i.e.
//! serving campaigns over the network costs (almost) nothing.
//!
//! The bench also asserts the two arms' outcome tables are byte-identical:
//! a transport may cost time, never results.
//!
//! Options: `--points N` (pi workload size, default 400), `--experiments N`
//! (default 24), `--workers N` (default 2), `--samples N` (default 3),
//! `--seed N` (default 7), `--out PATH` (default `BENCH_now_server.json`).

use gemfi_bench::{time_it_secs, Args};
use gemfi_campaign::{
    prepare_workload, run_campaign_now, run_socket_worker, CampaignServer, FaultSampler, NowConfig,
    OutcomeTable, QueueKind, QueueSpec, RunnerConfig, ServerConfig, WorkerOptions,
};
use gemfi_cpu::CpuKind;
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::Workload;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fresh scratch share per campaign run — both arms journal durably, so a
/// timing sample must never resume a previous sample's journal.
fn fresh_share(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("gemfi-bench-now-server-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch share");
    dir
}

fn main() {
    let args = Args::from_env();
    let points: u64 = args.number("points", 400u64);
    let experiments: usize = args.number("experiments", 24usize);
    let workers: usize = args.number("workers", 2usize);
    let samples: usize = args.number("samples", 3usize);
    let seed: u64 = args.number("seed", 7u64);
    let out_path = args.value_of("out").unwrap_or("BENCH_now_server.json").to_string();

    let workload = MonteCarloPi { points, ..MonteCarloPi::default() };
    // Atomic both sides: the ablation measures transport overhead, not
    // microarchitectural simulation speed.
    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };
    let prepared = prepare_workload(&workload).expect("workload prepares");
    let mut sampler = FaultSampler::new(seed, prepared.stage_events, 0, 0);
    let specs: Vec<_> = (0..experiments).map(|_| sampler.sample_any()).collect();

    // Spool arm: in-process worker threads claiming lease files off the
    // share directory.
    let mut spool_table: Option<OutcomeTable> = None;
    let (spool_median, spool_min) = time_it_secs("spool", samples, || {
        let share = fresh_share("spool");
        let config = NowConfig::new(workers, 1, &share);
        let (table, _, _) =
            run_campaign_now(&prepared, &workload, &specs, &runner, &config).expect("spool run");
        spool_table = Some(table);
    });

    // Socket arm: the campaign server plus a localhost worker fleet of the
    // same size, each worker re-resolving the guest from the wire metadata
    // exactly as a remote `gemfi_worker` process would.
    let resolver = move |name: &str, scale: &str| -> Option<Box<dyn Workload>> {
        (name == "pi" && scale == "bench").then(|| Box::new(workload) as Box<dyn Workload>)
    };
    let mut socket_table: Option<OutcomeTable> = None;
    let (socket_median, socket_min) = time_it_secs("socket", samples, || {
        let share = fresh_share("socket");
        let server = CampaignServer::start(
            ServerConfig { idle_backoff: Duration::from_millis(2), ..ServerConfig::new(&share) },
            vec![QueueSpec {
                name: "pi".to_string(),
                priority: 1,
                quota: 0,
                workload: "pi".to_string(),
                scale: "bench".to_string(),
                prepared: prepared.clone(),
                kind: QueueKind::FixedN { specs: specs.clone() },
            }],
        )
        .expect("server starts");
        let addr = server.addr().to_string();
        let fleet: Vec<_> = (0..workers)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut opts = WorkerOptions::new(format!("bench-w{i}"));
                    opts.runner = RunnerConfig {
                        inject_cpu: CpuKind::Atomic,
                        finish_cpu: CpuKind::Atomic,
                        ..RunnerConfig::default()
                    };
                    opts.reconnect_delay = Duration::from_millis(2);
                    run_socket_worker(&addr, &resolver, &opts).expect("worker finishes")
                })
            })
            .collect();
        assert!(server.wait_complete(Duration::from_secs(600)), "campaign must complete");
        for worker in fleet {
            worker.join().expect("worker thread");
        }
        let report = server.shutdown().expect("server shutdown");
        socket_table = Some(report.queues[0].table);
    });

    let spool_table = spool_table.unwrap();
    let socket_table = socket_table.unwrap();
    assert_eq!(
        spool_table, socket_table,
        "transports disagree on outcomes — the socket backend is not conformant"
    );

    let spool_rate = experiments as f64 / spool_median;
    let socket_rate = experiments as f64 / socket_median;
    // Socket throughput relative to spool: ~1.0 means the network transport
    // is free next to experiment execution.
    let ratio = socket_rate / spool_rate;
    println!("\nspool   {spool_rate:>8.1} exps/s  (median {spool_median:.4}s)");
    println!("socket  {socket_rate:>8.1} exps/s  (median {socket_median:.4}s)");
    println!("socket/spool throughput ratio {ratio:.3}");

    let report = format!(
        "{{\n  \"bench\": \"now_server\",\n  \"workload\": \"pi\",\n  \"points\": {points},\n  \
         \"experiments\": {experiments},\n  \"workers\": {workers},\n  \"samples\": {samples},\n  \
         \"seed\": {seed},\n  \"results\": [\n    \
         {{\"transport\": \"spool\", \"median_secs\": {spool_median:.6}, \"min_secs\": \
         {spool_min:.6}, \"experiments_per_sec\": {spool_rate:.2}}},\n    \
         {{\"transport\": \"socket\", \"median_secs\": {socket_median:.6}, \"min_secs\": \
         {socket_min:.6}, \"experiments_per_sec\": {socket_rate:.2}}}\n  ],\n  \
         \"speedup\": {{\"socket_vs_spool\": {ratio:.3}}}\n}}\n"
    );
    std::fs::write(&out_path, &report).expect("write BENCH_now_server.json");
    println!("\nwrote {out_path}");
}
