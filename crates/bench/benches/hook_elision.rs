//! Ablation for the dormancy-aware hook-elision fast path.
//!
//! The paper's headline performance claim (Sec. V, Fig. 5/6) is near-zero
//! overhead whenever fault injection is dormant. This bench measures the
//! elided sprint loop against the fully hooked loop in the three states an
//! experiment passes through:
//!
//! * `nofi` — no engine at all (`NoopHooks`): the unmodified-simulator
//!   baseline, dormant from the first tick.
//! * `pending` — one instruction-timed fault whose arming point lies beyond
//!   the end of the run: the engine sprints under a shrinking *event
//!   horizon* (`Dormancy::Quiet`) for the whole run.
//! * `dormant` — one transient `Xor(0)` execute fault that fires shortly
//!   after activation (corrupting nothing, but producing a real
//!   `InjectionRecord`): once served, the queue is empty and the engine is
//!   fully dormant (`Dormancy::Dormant`) — the post-fault fast-forward that
//!   dominates every experiment's watchdog budget.
//!
//! Each configuration runs with elision on and off; the two runs must agree
//! on the *entire* outcome vector — exit, full `ArchState`, guest output,
//! injection records, and committed instruction count — proving the fast
//! path architecturally invisible. Results (instructions/sec and on/off
//! speedups) are written to `BENCH_hook_elision.json`.
//!
//! Options: `--samples N` (default 10), `--points N` (Monte-Carlo points,
//! default 20000), `--out PATH` (default `BENCH_hook_elision.json`).

use gemfi::{
    FaultBehavior, FaultConfig, FaultLocation, FaultSpec, FaultTiming, GemFiEngine, InjectionRecord,
};
use gemfi_bench::{time_it_secs, Args};
use gemfi_cpu::{CpuKind, FaultHooks, NoopHooks};
use gemfi_isa::ArchState;
use gemfi_sim::{Machine, MachineConfig, RunExit};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    NoFi,
    Pending,
    Dormant,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::NoFi => "nofi",
            Scenario::Pending => "pending",
            Scenario::Dormant => "dormant",
        }
    }

    /// The fault population realizing this engine state.
    fn faults(self) -> Vec<FaultSpec> {
        match self {
            Scenario::NoFi => Vec::new(),
            // Arms far past the end of any run: permanently pending, so the
            // sprint runs under a Quiet event horizon the whole way.
            Scenario::Pending => vec![FaultSpec {
                location: FaultLocation::Execute { core: 0 },
                thread: 0,
                timing: FaultTiming::Instructions(u64::MAX / 2),
                behavior: FaultBehavior::Flip(0),
                occurrences: 1,
            }],
            // Fires at the 10th post-activation execute event. Xor(0)
            // leaves the value intact, so the run's architecture is
            // untouched — but the injection is served and recorded, and
            // from then on the engine is fully dormant.
            Scenario::Dormant => vec![FaultSpec {
                location: FaultLocation::Execute { core: 0 },
                thread: 0,
                timing: FaultTiming::Instructions(10),
                behavior: FaultBehavior::Xor(0),
                occurrences: 1,
            }],
        }
    }
}

/// Everything elision must leave bit-identical.
#[derive(Debug, PartialEq)]
struct OutcomeVector {
    exit: RunExit,
    arch: ArchState,
    output: Vec<u8>,
    records: Vec<InjectionRecord>,
    instret: u64,
}

fn config(cpu: CpuKind, elide: bool) -> MachineConfig {
    MachineConfig { elide, ..workload_machine_config(cpu) }
}

fn drive<H: FaultHooks>(m: &mut Machine<H>) -> RunExit {
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    exit
}

/// One full run; returns the outcome vector and instructions committed.
fn run_once(pi: &MonteCarloPi, cpu: CpuKind, scenario: Scenario, elide: bool) -> OutcomeVector {
    let guest = pi.build();
    let cfg = config(cpu, elide);
    let (exit, arch, output, records, instret) = if scenario == Scenario::NoFi {
        let mut m = Machine::boot(cfg, &guest.program, NoopHooks).expect("boots");
        let exit = drive(&mut m);
        let output = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap_or_default();
        (exit, m.arch().clone(), output, Vec::new(), m.instret())
    } else {
        let engine = GemFiEngine::new(FaultConfig::from_specs(scenario.faults()));
        let mut m = Machine::boot(cfg, &guest.program, engine).expect("boots");
        let exit = drive(&mut m);
        let output = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap_or_default();
        (exit, m.arch().clone(), output, m.hooks().records().to_vec(), m.instret())
    };
    OutcomeVector { exit, arch, output, records, instret }
}

struct Measurement {
    cpu: CpuKind,
    scenario: Scenario,
    elide: bool,
    median_secs: f64,
    min_secs: f64,
    instructions: u64,
}

impl Measurement {
    fn ips(&self) -> f64 {
        self.instructions as f64 / self.median_secs
    }
}

fn json_report(samples: usize, points: u64, results: &[Measurement]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"hook_elision\",\n  \"workload\": \"pi\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n  \"points\": {points},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cpu\": \"{}\", \"scenario\": \"{}\", \"elide\": {}, \
             \"median_secs\": {:.6}, \"min_secs\": {:.6}, \"instructions\": {}, \
             \"instructions_per_sec\": {:.0}}}{}\n",
            r.cpu,
            r.scenario.name(),
            r.elide,
            r.median_secs,
            r.min_secs,
            r.instructions,
            r.ips(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"speedup\": {");
    let mut first = true;
    for pair in results.chunks(2) {
        let [on, off] = pair else { continue };
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "\"{}_{}\": {:.3}",
            on.cpu,
            on.scenario.name(),
            on.ips() / off.ips()
        ));
    }
    out.push_str("}\n}\n");
    out
}

fn main() {
    let args = Args::from_env();
    let samples = args.number("samples", 10usize);
    let points = args.number("points", 20_000u64);
    let out_path = args.value_of("out").unwrap_or("BENCH_hook_elision.json").to_string();
    let pi = MonteCarloPi { points, init_spins: 100, ..MonteCarloPi::default() };

    println!("hook_elision ablation (pi, {points} points)\n");
    let mut results = Vec::new();
    for cpu in [CpuKind::Atomic, CpuKind::O3] {
        for scenario in [Scenario::NoFi, Scenario::Pending, Scenario::Dormant] {
            // Architectural invisibility first: both modes must produce the
            // same outcome vector, bit for bit.
            let on = run_once(&pi, cpu, scenario, true);
            let off = run_once(&pi, cpu, scenario, false);
            assert_eq!(
                on,
                off,
                "{cpu}/{}: elision must be architecturally invisible",
                scenario.name()
            );
            assert_eq!(on.exit, RunExit::Halted(0), "{cpu}/{}", scenario.name());
            if scenario == Scenario::Dormant {
                assert_eq!(on.records.len(), 1, "{cpu}: harmless fault must fire and be logged");
            } else {
                assert!(on.records.is_empty(), "{cpu}/{}: no fault may fire", scenario.name());
            }

            for elide in [true, false] {
                let label =
                    format!("{cpu}_{}_{}", scenario.name(), if elide { "elide" } else { "hooked" });
                let (median_secs, min_secs) = time_it_secs(&label, samples, || {
                    run_once(&pi, cpu, scenario, elide);
                });
                results.push(Measurement {
                    cpu,
                    scenario,
                    elide,
                    median_secs,
                    min_secs,
                    instructions: on.instret,
                });
            }
        }
    }

    println!();
    for pair in results.chunks(2) {
        let [on, off] = pair else { continue };
        println!(
            "{:<32} {:.2}x  ({:.0} vs {:.0} instructions/sec)",
            format!("speedup_{}_{}", on.cpu, on.scenario.name()),
            on.ips() / off.ips(),
            on.ips(),
            off.ips(),
        );
    }

    let report = json_report(samples, points, &results);
    std::fs::write(&out_path, &report).expect("write BENCH_hook_elision.json");
    println!("\nwrote {out_path}");
}
