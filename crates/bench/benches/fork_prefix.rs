//! Fork-at-injection ablation: shared-prefix suffix execution versus
//! whole-run restores, measured as campaign experiments per second.
//!
//! The campaign here is deliberately *prefix-heavy* — every fault fires in
//! the last tenth of the kernel's committed instructions — so the fault-free
//! prefix dominates each experiment. The whole-run baseline replays that
//! prefix once per experiment; the forked executor sprints one trunk along
//! it and forks a warm machine per experiment shortly before its fault can
//! fire, running only the divergent suffix. Both modes run the *same* spec
//! population sequentially (one worker) and must classify every experiment
//! identically: fork-at-injection is a performance strategy, not a semantic
//! one (`tests/fork_prefix_conformance.rs` pins the bit-level half).
//!
//! Options: `--experiments N` (experiments per timing sample, default 24),
//! `--points N` (Monte-Carlo kernel size, default 400), `--samples N`
//! (timing samples per mode, default 5), `--out PATH` (JSON report path,
//! default `BENCH_fork_prefix.json`).

use gemfi::{FaultBehavior, FaultLocation, FaultSpec, FaultTiming, Outcome};
use gemfi_bench::{time_it_secs, Args};
use gemfi_campaign::fork::{plan_suffixes, run_campaign_forked, ForkConfig};
use gemfi_campaign::{prepare_workload, run_experiment, PreparedWorkload, RunnerConfig};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::Workload;

/// Prefix-heavy fault population: register bit flips evenly spaced over the
/// *last tenth* of the kernel's committed instructions, alternating between
/// quiet FP registers and live integer registers so the suffixes carry a
/// mix of propagating and non-propagating faults.
fn fault_population(prepared: &PreparedWorkload, experiments: usize) -> Vec<FaultSpec> {
    let committed = prepared.stage_events[4].max(10 * experiments as u64);
    let base = committed - committed / 10;
    let span = committed - base;
    (0..experiments)
        .map(|i| FaultSpec {
            location: if i % 2 == 0 {
                FaultLocation::FpReg { core: 0, reg: (16 + i % 12) as u8 }
            } else {
                FaultLocation::IntReg { core: 0, reg: (i % 24) as u8 }
            },
            thread: 0,
            timing: FaultTiming::Instructions(base + (i as u64 * span) / experiments as u64),
            behavior: FaultBehavior::Flip((i % 48) as u8),
            occurrences: 1,
        })
        .collect()
}

fn whole_run_campaign(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
) -> Vec<Outcome> {
    specs.iter().map(|&spec| run_experiment(prepared, workload, spec, runner).outcome).collect()
}

struct Mode {
    name: &'static str,
    median_secs: f64,
    min_secs: f64,
    experiments: usize,
}

impl Mode {
    fn eps(&self) -> f64 {
        self.experiments as f64 / self.median_secs
    }
}

fn json_report(
    samples: usize,
    points: u64,
    modes: &[Mode; 2],
    forked: usize,
    fallbacks: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fork_prefix\",\n  \"workload\": \"pi\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n  \"points\": {points},\n"));
    out.push_str(&format!(
        "  \"forked_suffixes\": {forked},\n  \"whole_run_fallbacks\": {fallbacks},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, m) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"experiments\": {}, \"median_secs\": {:.6}, \
             \"min_secs\": {:.6}, \"experiments_per_sec\": {:.2}}}{}\n",
            m.name,
            m.experiments,
            m.median_secs,
            m.min_secs,
            m.eps(),
            if i + 1 < modes.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("  ],\n  \"speedup\": {:.3}\n}}\n", modes[1].eps() / modes[0].eps()));
    out
}

fn main() {
    let args = Args::from_env();
    let experiments = args.number("experiments", 24usize);
    let points = args.number("points", 400u64);
    let samples = args.number("samples", 5usize);
    let out_path = args.value_of("out").unwrap_or("BENCH_fork_prefix.json").to_string();

    let workload = MonteCarloPi { points, init_spins: 100, ..MonteCarloPi::default() };
    // The paper's experiment shape: inject under O3, finish atomic. The O3
    // prefix is exactly the redundant work fork-at-injection shares.
    let runner = RunnerConfig::default();
    let fork = ForkConfig { workers: 1, ..ForkConfig::default() };

    let prepared = prepare_workload(&workload).expect("workload prepares");
    let specs = fault_population(&prepared, experiments);

    let planned = plan_suffixes(&prepared, &specs, &runner, &fork);
    let forked = planned.iter().filter(|s| s.forked_at.is_some()).count();
    let fallbacks = planned.len() - forked;
    drop(planned);
    assert!(forked > 0, "no suffix forked — the ablation would compare whole runs to whole runs");

    println!(
        "fork_prefix ({experiments} experiments/sample, pi --points {points}, \
         {forked} forked / {fallbacks} fallbacks)"
    );

    // Conformance spot-check at bench scale: both executors classify the
    // whole population identically.
    let baseline = whole_run_campaign(&prepared, &workload, &specs, &runner);
    let forked_outcomes: Vec<Outcome> =
        run_campaign_forked(&prepared, &workload, &specs, &runner, &fork)
            .into_iter()
            .map(|r| r.outcome)
            .collect();
    assert_eq!(
        baseline, forked_outcomes,
        "fork-at-injection changed experiment outcomes — shared prefixes are no longer transparent"
    );

    let (whole_median, whole_min) = time_it_secs("campaign_whole_run", samples, || {
        whole_run_campaign(&prepared, &workload, &specs, &runner);
    });
    let (fork_median, fork_min) = time_it_secs("campaign_fork_at_injection", samples, || {
        run_campaign_forked(&prepared, &workload, &specs, &runner, &fork);
    });

    let modes = [
        Mode { name: "whole_run", median_secs: whole_median, min_secs: whole_min, experiments },
        Mode {
            name: "fork_at_injection",
            median_secs: fork_median,
            min_secs: fork_min,
            experiments,
        },
    ];
    println!(
        "speedup_fork_prefix                {:.2}x  ({:.1} vs {:.1} experiments/sec)",
        modes[1].eps() / modes[0].eps(),
        modes[1].eps(),
        modes[0].eps(),
    );

    let report = json_report(samples, points, &modes, forked, fallbacks);
    std::fs::write(&out_path, &report).expect("write BENCH_fork_prefix.json");
    println!("\nwrote {out_path}");
}
