//! Benchmark behind Fig. 7: simulation throughput with the fault-injection
//! machinery compiled out (`NoopHooks`) versus attached and active
//! (activated thread, empty fault queue — the paper's worst-case overhead
//! configuration).

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_bench::time_it;
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_sim::{Machine, RunExit};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

fn pi() -> MonteCarloPi {
    MonteCarloPi { points: 400, init_spins: 100, ..MonteCarloPi::default() }
}

fn run_noop(cpu: CpuKind) {
    let w = pi();
    let guest = w.build();
    let mut m =
        Machine::boot(workload_machine_config(cpu), &guest.program, NoopHooks).expect("boots");
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));
}

fn run_gemfi(cpu: CpuKind) {
    let w = pi();
    let guest = w.build();
    let engine = GemFiEngine::new(FaultConfig::empty());
    let mut m = Machine::boot(workload_machine_config(cpu), &guest.program, engine).expect("boots");
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));
}

fn main() {
    println!("fig7_overhead");
    for cpu in [CpuKind::Atomic, CpuKind::O3] {
        time_it(&format!("baseline_noop_{cpu}"), 20, || run_noop(cpu));
        time_it(&format!("gemfi_active_{cpu}"), 20, || run_gemfi(cpu));
    }
}
