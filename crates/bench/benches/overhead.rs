//! Benchmark behind Fig. 7: simulation throughput with the fault-injection
//! machinery compiled out (`NoopHooks`) versus attached and active
//! (activated thread, empty fault queue — the paper's worst-case overhead
//! configuration).
//!
//! Also records the predecoded-instruction-cache ablation: the same
//! workload with the cache enabled and disabled, per CPU model, written as
//! `BENCH_predecode.json` (instructions/sec and the on/off speedup).
//!
//! Options: `--samples N` (timing samples per configuration, default 20),
//! `--points N` (Monte-Carlo points for the Fig. 7 comparison, default
//! 400), `--ablation-points N` (points for the predecode ablation, default
//! 20000 — large enough that the simulation hot loop, not machine boot,
//! dominates the measurement), `--out PATH` (JSON report path, default
//! `BENCH_predecode.json`).

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_bench::{time_it, time_it_secs, Args};
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_sim::{Machine, MachineConfig, RunExit};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::{workload_machine_config, Workload};

fn pi(points: u64) -> MonteCarloPi {
    MonteCarloPi { points, init_spins: 100, ..MonteCarloPi::default() }
}

fn config(cpu: CpuKind, predecode: bool) -> MachineConfig {
    let mut config = workload_machine_config(cpu);
    config.mem.predecode = predecode;
    config
}

fn drive<H: gemfi_cpu::FaultHooks>(mut m: Machine<H>) -> Machine<H> {
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));
    m
}

fn run_noop(cpu: CpuKind, points: u64, predecode: bool) -> u64 {
    let guest = pi(points).build();
    let m = Machine::boot(config(cpu, predecode), &guest.program, NoopHooks).expect("boots");
    drive(m).instret()
}

fn run_gemfi(cpu: CpuKind, points: u64) {
    let guest = pi(points).build();
    let engine = GemFiEngine::new(FaultConfig::empty());
    let m = Machine::boot(config(cpu, true), &guest.program, engine).expect("boots");
    drive(m);
}

struct Ablation {
    cpu: CpuKind,
    predecode: bool,
    median_secs: f64,
    min_secs: f64,
    instructions: u64,
}

impl Ablation {
    fn ips(&self) -> f64 {
        self.instructions as f64 / self.median_secs
    }
}

fn json_report(samples: usize, ablation_points: u64, results: &[Ablation]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"predecode_ablation\",\n  \"workload\": \"pi\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n  \"points\": {ablation_points},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cpu\": \"{}\", \"predecode\": {}, \"median_secs\": {:.6}, \
             \"min_secs\": {:.6}, \"instructions\": {}, \"instructions_per_sec\": {:.0}}}{}\n",
            r.cpu,
            r.predecode,
            r.median_secs,
            r.min_secs,
            r.instructions,
            r.ips(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"speedup\": {");
    let mut first = true;
    for pair in results.chunks(2) {
        let [on, off] = pair else { continue };
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{}\": {:.3}", on.cpu, on.ips() / off.ips()));
    }
    out.push_str("}\n}\n");
    out
}

fn main() {
    let args = Args::from_env();
    let samples = args.number("samples", 20usize);
    let points = args.number("points", 400u64);
    let ablation_points = args.number("ablation-points", 20_000u64);
    let out_path = args.value_of("out").unwrap_or("BENCH_predecode.json").to_string();

    println!("fig7_overhead");
    for cpu in [CpuKind::Atomic, CpuKind::O3] {
        time_it(&format!("baseline_noop_{cpu}"), samples, || {
            run_noop(cpu, points, true);
        });
        time_it(&format!("gemfi_active_{cpu}"), samples, || run_gemfi(cpu, points));
    }

    println!("\npredecode_ablation");
    let mut results = Vec::new();
    for cpu in [CpuKind::Atomic, CpuKind::O3] {
        for predecode in [true, false] {
            let instructions = run_noop(cpu, ablation_points, predecode);
            let label = format!("{cpu}_predecode_{}", if predecode { "on" } else { "off" });
            let (median_secs, min_secs) = time_it_secs(&label, samples, || {
                run_noop(cpu, ablation_points, predecode);
            });
            results.push(Ablation { cpu, predecode, median_secs, min_secs, instructions });
        }
    }
    for pair in results.chunks(2) {
        let [on, off] = pair else { continue };
        println!(
            "{:<32} {:.2}x  ({:.0} vs {:.0} instructions/sec)",
            format!("speedup_{}", on.cpu),
            on.ips() / off.ips(),
            on.ips(),
            off.ips(),
        );
    }

    let report = json_report(samples, ablation_points, &results);
    std::fs::write(&out_path, &report).expect("write BENCH_predecode.json");
    println!("\nwrote {out_path}");
}
