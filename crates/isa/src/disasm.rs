//! Disassembler.
//!
//! GemFI prints the assembly of the instruction a fault landed on so the
//! outcome can be correlated *post-mortem* with the affected instruction
//! (Sec. IV-B "When injecting a fault we print information on the affected
//! assembly instruction"). [`disassemble`] never fails: undecodable words
//! render as `.illegal`.

use crate::format::RawInstr;
use crate::instr::decode;

/// Renders an instruction word as assembly text, or `.illegal <word>` when
/// the word does not decode.
///
/// # Example
///
/// ```
/// use gemfi_isa::{disassemble, encode, Instr, IntReg, Operand};
/// use gemfi_isa::opcode::IntFunc;
///
/// let w = encode(&Instr::IntOp {
///     func: IntFunc::Addq,
///     ra: IntReg::new(1).unwrap(),
///     rb: Operand::Lit(4),
///     rc: IntReg::new(2).unwrap(),
/// });
/// assert_eq!(disassemble(w), "addq r1, #4, r2");
/// ```
pub fn disassemble(word: RawInstr) -> String {
    match decode(word) {
        Ok(i) => i.to_string(),
        Err(_) => format!(".illegal {word}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format;

    #[test]
    fn illegal_words_render_as_directive() {
        let w = RawInstr(0).with_field(format::OPCODE, 0x07);
        assert!(disassemble(w).starts_with(".illegal"));
    }

    #[test]
    fn decodable_words_render_as_assembly() {
        use crate::instr::{encode, Instr};
        let w = encode(&Instr::FiReadInit);
        assert_eq!(disassemble(w), "fi_read_init_all");
    }
}
