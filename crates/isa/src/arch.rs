//! Architectural (software-visible) state of one hardware thread context.

use crate::regs::{RegFile, SpecialReg};

/// Processor-status bit: executing in kernel (PAL) mode.
pub const PSR_KERNEL: u64 = 1 << 0;
/// Processor-status bit: timer interrupts enabled.
pub const PSR_INT_ENABLE: u64 = 1 << 1;

/// The complete architectural state a context switch saves and restores,
/// and the complete target surface for *register* and *PC* fault injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// General-purpose register files.
    pub regs: RegFile,
    /// Program counter.
    pub pc: u64,
    /// Process-control-block base of the running thread; GemFI's thread
    /// identity (changes exactly at context switches).
    pub pcbb: u64,
    /// Processor status word ([`PSR_KERNEL`], [`PSR_INT_ENABLE`]).
    pub psr: u64,
    /// Last exception address (diagnostics).
    pub exc_addr: u64,
}

impl ArchState {
    /// Fresh state: zeroed registers, PC at `entry`, interrupts enabled.
    pub fn new(entry: u64) -> ArchState {
        ArchState { regs: RegFile::new(), pc: entry, pcbb: 0, psr: PSR_INT_ENABLE, exc_addr: 0 }
    }

    /// Reads a special register by identity.
    pub fn read_special(&self, r: SpecialReg) -> u64 {
        match r {
            SpecialReg::Pc => self.pc,
            SpecialReg::PcbBase => self.pcbb,
            SpecialReg::Psr => self.psr,
            SpecialReg::ExcAddr => self.exc_addr,
        }
    }

    /// Writes a special register by identity (the register-fault path).
    pub fn write_special(&mut self, r: SpecialReg, value: u64) {
        match r {
            SpecialReg::Pc => self.pc = value,
            SpecialReg::PcbBase => self.pcbb = value,
            SpecialReg::Psr => self.psr = value,
            SpecialReg::ExcAddr => self.exc_addr = value,
        }
    }

    /// Whether the context is in kernel (PAL) mode.
    pub fn in_kernel(&self) -> bool {
        self.psr & PSR_KERNEL != 0
    }

    /// Whether timer interrupts are enabled.
    pub fn interrupts_enabled(&self) -> bool {
        self.psr & PSR_INT_ENABLE != 0
    }
}

impl Default for ArchState {
    fn default() -> ArchState {
        ArchState::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_register_roundtrip() {
        let mut a = ArchState::new(0x1_0000);
        for r in SpecialReg::ALL {
            a.write_special(r, 0xabcd);
            assert_eq!(a.read_special(r), 0xabcd);
        }
    }

    #[test]
    fn fresh_state_has_interrupts_enabled_user_mode() {
        let a = ArchState::new(0x40);
        assert_eq!(a.pc, 0x40);
        assert!(a.interrupts_enabled());
        assert!(!a.in_kernel());
    }
}
