//! Decoded instructions and the encode/decode pair.
//!
//! `decode(encode(i)) == i` for every well-formed instruction; the property
//! tests in `tests/codec.rs` check this exhaustively over random operands.
//! Decoding is *total over register fields* (any 5-bit pattern selects a
//! register) and *partial over opcode/function fields* (holes raise
//! [`Trap::IllegalInstruction`]), which is exactly the behaviour the paper's
//! fetched-instruction fault analysis relies on.

use crate::format::{self, RawInstr};
use crate::opcode::{BranchCond, FpBranchCond, FpFunc, IntFunc, Opcode, PalFunc};
use crate::regs::{FpReg, IntReg};
use crate::trap::Trap;
use std::fmt;

/// Second operand of an integer operate instruction: a register or an 8-bit
/// literal (Alpha's `lit` encoding, bit 12 of the word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(IntReg),
    /// Zero-extended 8-bit literal operand.
    Lit(u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Lit(v) => write!(f, "#{v}"),
        }
    }
}

/// Integer load/store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Load sign-extended 32-bit.
    Ldl,
    /// Load 64-bit.
    Ldq,
    /// Store low 32 bits.
    Stl,
    /// Store 64-bit.
    Stq,
}

impl MemOp {
    /// Whether this operation writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, MemOp::Stl | MemOp::Stq)
    }

    /// Access width in bytes.
    pub fn width(self) -> u64 {
        match self {
            MemOp::Ldl | MemOp::Stl => 4,
            MemOp::Ldq | MemOp::Stq => 8,
        }
    }

    fn opcode(self) -> Opcode {
        match self {
            MemOp::Ldl => Opcode::Ldl,
            MemOp::Ldq => Opcode::Ldq,
            MemOp::Stl => Opcode::Stl,
            MemOp::Stq => Opcode::Stq,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            MemOp::Ldl => "ldl",
            MemOp::Ldq => "ldq",
            MemOp::Stl => "stl",
            MemOp::Stq => "stq",
        }
    }
}

/// Memory-format jump flavours (opcode 0x1a, selected by displacement bits
/// 15:14 as on Alpha).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JumpKind {
    /// Indirect jump.
    Jmp,
    /// Jump to subroutine (pushes the return-address stack).
    Jsr,
    /// Return (pops the return-address stack).
    Ret,
}

impl JumpKind {
    fn hint_bits(self) -> u32 {
        match self {
            JumpKind::Jmp => 0,
            JumpKind::Jsr => 1,
            JumpKind::Ret => 2,
        }
    }

    fn from_hint_bits(bits: u32) -> JumpKind {
        match bits & 3 {
            1 => JumpKind::Jsr,
            2 => JumpKind::Ret,
            // Hint bits are advisory on Alpha: unknown patterns behave as JMP.
            _ => JumpKind::Jmp,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            JumpKind::Jmp => "jmp",
            JumpKind::Jsr => "jsr",
            JumpKind::Ret => "ret",
        }
    }
}

/// A decoded instruction of the Alpha subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Trap into the PAL/kernel layer.
    CallPal {
        /// Which PAL service.
        func: PalFunc,
    },
    /// GemFI pseudo-op `fi_activate_inst(id)`: toggles fault injection for
    /// the running thread (Sec. III-A).
    FiActivate {
        /// Thread identifier used in fault configurations.
        id: u32,
    },
    /// GemFI pseudo-op `fi_read_init_all()`: checkpoint the simulation and,
    /// on restore, re-read the fault configuration file.
    FiReadInit,
    /// `Ra = Rb + disp`.
    Lda {
        /// Destination.
        ra: IntReg,
        /// Base.
        rb: IntReg,
        /// Signed 16-bit displacement.
        disp: i16,
    },
    /// `Ra = Rb + (disp << 16)`.
    Ldah {
        /// Destination.
        ra: IntReg,
        /// Base.
        rb: IntReg,
        /// Signed 16-bit displacement (shifted left 16).
        disp: i16,
    },
    /// Integer load/store: `Ra ↔ mem[Rb + disp]`.
    Mem {
        /// Operation.
        op: MemOp,
        /// Data register.
        ra: IntReg,
        /// Base register.
        rb: IntReg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// FP load: `Fa = mem[Rb + disp]` (64-bit).
    Ldt {
        /// Destination FP register.
        fa: FpReg,
        /// Base register.
        rb: IntReg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// FP store: `mem[Rb + disp] = Fa` (64-bit).
    Stt {
        /// Source FP register.
        fa: FpReg,
        /// Base register.
        rb: IntReg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// Indirect jump: `Ra = return address; PC = Rb & !3`.
    Jump {
        /// Flavour (JMP/JSR/RET) — affects the return-address stack only.
        kind: JumpKind,
        /// Link register receiving the return address.
        ra: IntReg,
        /// Target register.
        rb: IntReg,
    },
    /// Unconditional branch: `Ra = return address; PC += 4 + disp*4`.
    Br {
        /// Link register.
        ra: IntReg,
        /// Signed word displacement.
        disp: i32,
    },
    /// Branch to subroutine (identical dataflow to `Br`; pushes the RAS).
    Bsr {
        /// Link register.
        ra: IntReg,
        /// Signed word displacement.
        disp: i32,
    },
    /// Conditional branch on an integer register.
    CondBr {
        /// Condition.
        cond: BranchCond,
        /// Tested register.
        ra: IntReg,
        /// Signed word displacement.
        disp: i32,
    },
    /// Conditional branch on an FP register.
    FpCondBr {
        /// Condition.
        cond: FpBranchCond,
        /// Tested FP register.
        fa: FpReg,
        /// Signed word displacement.
        disp: i32,
    },
    /// Integer operate: `Rc = Ra <op> Rb|lit`.
    IntOp {
        /// Operation.
        func: IntFunc,
        /// First source.
        ra: IntReg,
        /// Second source (register or literal).
        rb: Operand,
        /// Destination.
        rc: IntReg,
    },
    /// FP operate: `Fc = Fa <op> Fb`.
    FpOp {
        /// Operation (pure-FP subset; `Itoft`/`Ftoit` have own variants).
        func: FpFunc,
        /// First source.
        fa: FpReg,
        /// Second source.
        fb: FpReg,
        /// Destination.
        fc: FpReg,
    },
    /// Move integer register bits to an FP register.
    Itoft {
        /// Integer source (decoded from the `Rb` field).
        rb: IntReg,
        /// FP destination (decoded from the `Rc` field).
        fc: FpReg,
    },
    /// Move FP register bits to an integer register.
    Ftoit {
        /// FP source (decoded from the `Ra` field).
        fa: FpReg,
        /// Integer destination (decoded from the `Rc` field).
        rc: IntReg,
    },
}

impl Instr {
    /// Whether this instruction is any control-flow transfer.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Jump { .. }
                | Instr::Br { .. }
                | Instr::Bsr { .. }
                | Instr::CondBr { .. }
                | Instr::FpCondBr { .. }
        )
    }

    /// Whether this instruction is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::CondBr { .. } | Instr::FpCondBr { .. })
    }

    /// Whether this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Mem { .. } | Instr::Ldt { .. } | Instr::Stt { .. })
    }

    /// Whether this instruction writes data memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Mem { op, .. } if op.is_store()) || matches!(self, Instr::Stt { .. })
    }

    /// Whether this instruction reads or writes the FP register file.
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Instr::Ldt { .. }
                | Instr::Stt { .. }
                | Instr::FpCondBr { .. }
                | Instr::FpOp { .. }
                | Instr::Itoft { .. }
                | Instr::Ftoit { .. }
        )
    }
}

/// Decodes an instruction word.
///
/// # Errors
///
/// Returns [`Trap::IllegalInstruction`] for opcode holes, unimplemented
/// operate-group function codes, and non-zero SBZ bits in register-mode
/// operates are *accepted* (they are "should be zero", not "must be zero" —
/// matching the tolerance real decoders have, and keeping single-bit SBZ
/// corruption in the paper's "strictly correct" class).
pub fn decode(word: RawInstr) -> Result<Instr, Trap> {
    let illegal = || Trap::IllegalInstruction { word: word.0, pc: 0 };
    let opcode = Opcode::from_bits(word.opcode()).ok_or_else(illegal)?;
    let ra_int = IntReg::from_bits(word.ra());
    let ra_fp = FpReg::from_bits(word.ra());
    let rb_int = IntReg::from_bits(word.rb());
    let disp16 = word.field(format::MDISP) as u16 as i16;
    let disp21 = word.bdisp() as i32;

    Ok(match opcode {
        Opcode::CallPal => {
            Instr::CallPal { func: PalFunc::from_number(word.palnum()).ok_or_else(illegal)? }
        }
        Opcode::FiActivate => Instr::FiActivate { id: word.palnum() },
        Opcode::FiReadInit => Instr::FiReadInit,
        Opcode::Lda => Instr::Lda { ra: ra_int, rb: rb_int, disp: disp16 },
        Opcode::Ldah => Instr::Ldah { ra: ra_int, rb: rb_int, disp: disp16 },
        Opcode::Ldl => Instr::Mem { op: MemOp::Ldl, ra: ra_int, rb: rb_int, disp: disp16 },
        Opcode::Ldq => Instr::Mem { op: MemOp::Ldq, ra: ra_int, rb: rb_int, disp: disp16 },
        Opcode::Stl => Instr::Mem { op: MemOp::Stl, ra: ra_int, rb: rb_int, disp: disp16 },
        Opcode::Stq => Instr::Mem { op: MemOp::Stq, ra: ra_int, rb: rb_int, disp: disp16 },
        Opcode::Ldt => Instr::Ldt { fa: ra_fp, rb: rb_int, disp: disp16 },
        Opcode::Stt => Instr::Stt { fa: ra_fp, rb: rb_int, disp: disp16 },
        Opcode::Jmp => Instr::Jump {
            kind: JumpKind::from_hint_bits(word.field(format::MDISP) >> 14),
            ra: ra_int,
            rb: rb_int,
        },
        Opcode::Br => Instr::Br { ra: ra_int, disp: disp21 },
        Opcode::Bsr => Instr::Bsr { ra: ra_int, disp: disp21 },
        Opcode::Beq => Instr::CondBr { cond: BranchCond::Eq, ra: ra_int, disp: disp21 },
        Opcode::Bne => Instr::CondBr { cond: BranchCond::Ne, ra: ra_int, disp: disp21 },
        Opcode::Blt => Instr::CondBr { cond: BranchCond::Lt, ra: ra_int, disp: disp21 },
        Opcode::Ble => Instr::CondBr { cond: BranchCond::Le, ra: ra_int, disp: disp21 },
        Opcode::Bgt => Instr::CondBr { cond: BranchCond::Gt, ra: ra_int, disp: disp21 },
        Opcode::Bge => Instr::CondBr { cond: BranchCond::Ge, ra: ra_int, disp: disp21 },
        Opcode::Blbc => Instr::CondBr { cond: BranchCond::Lbc, ra: ra_int, disp: disp21 },
        Opcode::Blbs => Instr::CondBr { cond: BranchCond::Lbs, ra: ra_int, disp: disp21 },
        Opcode::Fbeq => Instr::FpCondBr { cond: FpBranchCond::Eq, fa: ra_fp, disp: disp21 },
        Opcode::Fbne => Instr::FpCondBr { cond: FpBranchCond::Ne, fa: ra_fp, disp: disp21 },
        Opcode::Fblt => Instr::FpCondBr { cond: FpBranchCond::Lt, fa: ra_fp, disp: disp21 },
        Opcode::Fble => Instr::FpCondBr { cond: FpBranchCond::Le, fa: ra_fp, disp: disp21 },
        Opcode::Fbgt => Instr::FpCondBr { cond: FpBranchCond::Gt, fa: ra_fp, disp: disp21 },
        Opcode::Fbge => Instr::FpCondBr { cond: FpBranchCond::Ge, fa: ra_fp, disp: disp21 },
        Opcode::IntArith | Opcode::IntLogic | Opcode::IntShift | Opcode::IntMul => {
            let func = IntFunc::from_encoding(opcode, word.function()).ok_or_else(illegal)?;
            let rb = if word.lit_flag() {
                Operand::Lit(word.literal() as u8)
            } else {
                Operand::Reg(rb_int)
            };
            Instr::IntOp { func, ra: ra_int, rb, rc: IntReg::from_bits(word.rc()) }
        }
        Opcode::FltOp => {
            let func = FpFunc::from_function(word.function()).ok_or_else(illegal)?;
            match func {
                FpFunc::Itoft => Instr::Itoft { rb: rb_int, fc: FpReg::from_bits(word.rc()) },
                FpFunc::Ftoit => Instr::Ftoit { fa: ra_fp, rc: IntReg::from_bits(word.rc()) },
                _ => Instr::FpOp {
                    func,
                    fa: ra_fp,
                    fb: FpReg::from_bits(word.rb()),
                    fc: FpReg::from_bits(word.rc()),
                },
            }
        }
    })
}

/// Encodes an instruction into its 32-bit word.
pub fn encode(instr: &Instr) -> RawInstr {
    fn base(op: Opcode) -> RawInstr {
        RawInstr(0).with_field(format::OPCODE, op as u8 as u32)
    }
    fn mem(op: Opcode, ra: u32, rb: IntReg, disp: i16) -> RawInstr {
        base(op)
            .with_field(format::RA, ra)
            .with_field(format::RB, rb.index() as u32)
            .with_field(format::MDISP, disp as u16 as u32)
    }
    fn branch(op: Opcode, ra: u32, disp: i32) -> RawInstr {
        base(op).with_field(format::RA, ra).with_field(format::BDISP, (disp as u32) & 0x1f_ffff)
    }

    match *instr {
        Instr::CallPal { func } => {
            base(Opcode::CallPal).with_field(format::PAL_NUMBER, func.number())
        }
        Instr::FiActivate { id } => {
            base(Opcode::FiActivate).with_field(format::PAL_NUMBER, id & 0x03ff_ffff)
        }
        Instr::FiReadInit => base(Opcode::FiReadInit),
        Instr::Lda { ra, rb, disp } => mem(Opcode::Lda, ra.index() as u32, rb, disp),
        Instr::Ldah { ra, rb, disp } => mem(Opcode::Ldah, ra.index() as u32, rb, disp),
        Instr::Mem { op, ra, rb, disp } => mem(op.opcode(), ra.index() as u32, rb, disp),
        Instr::Ldt { fa, rb, disp } => mem(Opcode::Ldt, fa.index() as u32, rb, disp),
        Instr::Stt { fa, rb, disp } => mem(Opcode::Stt, fa.index() as u32, rb, disp),
        Instr::Jump { kind, ra, rb } => {
            mem(Opcode::Jmp, ra.index() as u32, rb, ((kind.hint_bits() << 14) & 0xffff) as i16)
        }
        Instr::Br { ra, disp } => branch(Opcode::Br, ra.index() as u32, disp),
        Instr::Bsr { ra, disp } => branch(Opcode::Bsr, ra.index() as u32, disp),
        Instr::CondBr { cond, ra, disp } => {
            let op = match cond {
                BranchCond::Eq => Opcode::Beq,
                BranchCond::Ne => Opcode::Bne,
                BranchCond::Lt => Opcode::Blt,
                BranchCond::Le => Opcode::Ble,
                BranchCond::Gt => Opcode::Bgt,
                BranchCond::Ge => Opcode::Bge,
                BranchCond::Lbc => Opcode::Blbc,
                BranchCond::Lbs => Opcode::Blbs,
            };
            branch(op, ra.index() as u32, disp)
        }
        Instr::FpCondBr { cond, fa, disp } => {
            let op = match cond {
                FpBranchCond::Eq => Opcode::Fbeq,
                FpBranchCond::Ne => Opcode::Fbne,
                FpBranchCond::Lt => Opcode::Fblt,
                FpBranchCond::Le => Opcode::Fble,
                FpBranchCond::Gt => Opcode::Fbgt,
                FpBranchCond::Ge => Opcode::Fbge,
            };
            branch(op, fa.index() as u32, disp)
        }
        Instr::IntOp { func, ra, rb, rc } => {
            let (op, code) = func.encoding();
            let mut w = base(op)
                .with_field(format::RA, ra.index() as u32)
                .with_field(format::FUNCTION, code)
                .with_field(format::RC, rc.index() as u32);
            match rb {
                Operand::Reg(r) => w = w.with_field(format::RB, r.index() as u32),
                Operand::Lit(v) => {
                    w = w.with_field(format::LITFLAG, 1).with_field(format::LITERAL, v as u32);
                }
            }
            w
        }
        Instr::FpOp { func, fa, fb, fc } => base(Opcode::FltOp)
            .with_field(format::RA, fa.index() as u32)
            .with_field(format::RB, fb.index() as u32)
            .with_field(format::FUNCTION, func.function())
            .with_field(format::RC, fc.index() as u32),
        Instr::Itoft { rb, fc } => base(Opcode::FltOp)
            .with_field(format::RB, rb.index() as u32)
            .with_field(format::FUNCTION, FpFunc::Itoft.function())
            .with_field(format::RC, fc.index() as u32)
            .with_field(format::RA, 31),
        Instr::Ftoit { fa, rc } => base(Opcode::FltOp)
            .with_field(format::RA, fa.index() as u32)
            .with_field(format::FUNCTION, FpFunc::Ftoit.function())
            .with_field(format::RC, rc.index() as u32)
            .with_field(format::RB, 31),
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::CallPal { func } => write!(f, "call_pal {func}"),
            Instr::FiActivate { id } => write!(f, "fi_activate_inst {id}"),
            Instr::FiReadInit => write!(f, "fi_read_init_all"),
            Instr::Lda { ra, rb, disp } => write!(f, "lda {ra}, {disp}({rb})"),
            Instr::Ldah { ra, rb, disp } => write!(f, "ldah {ra}, {disp}({rb})"),
            Instr::Mem { op, ra, rb, disp } => {
                write!(f, "{} {ra}, {disp}({rb})", op.mnemonic())
            }
            Instr::Ldt { fa, rb, disp } => write!(f, "ldt {fa}, {disp}({rb})"),
            Instr::Stt { fa, rb, disp } => write!(f, "stt {fa}, {disp}({rb})"),
            Instr::Jump { kind, ra, rb } => write!(f, "{} {ra}, ({rb})", kind.mnemonic()),
            Instr::Br { ra, disp } => write!(f, "br {ra}, {disp}"),
            Instr::Bsr { ra, disp } => write!(f, "bsr {ra}, {disp}"),
            Instr::CondBr { cond, ra, disp } => {
                write!(f, "{} {ra}, {disp}", cond.mnemonic())
            }
            Instr::FpCondBr { cond, fa, disp } => {
                write!(f, "{} {fa}, {disp}", cond.mnemonic())
            }
            Instr::IntOp { func, ra, rb, rc } => write!(f, "{func} {ra}, {rb}, {rc}"),
            Instr::FpOp { func, fa, fb, fc } => write!(f, "{func} {fa}, {fb}, {fc}"),
            Instr::Itoft { rb, fc } => write!(f, "itoft {rb}, {fc}"),
            Instr::Ftoit { fa, rc } => write!(f, "ftoit {fa}, {rc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> IntReg {
        IntReg::new(n).unwrap()
    }
    fn fr(n: u8) -> FpReg {
        FpReg::new(n).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip_samples() {
        let samples = [
            Instr::CallPal { func: PalFunc::Exit },
            Instr::FiActivate { id: 7 },
            Instr::FiReadInit,
            Instr::Lda { ra: r(1), rb: r(2), disp: -8 },
            Instr::Ldah { ra: r(3), rb: IntReg::ZERO, disp: 0x10 },
            Instr::Mem { op: MemOp::Ldq, ra: r(4), rb: r(30), disp: 16 },
            Instr::Mem { op: MemOp::Stl, ra: r(5), rb: r(29), disp: -4 },
            Instr::Ldt { fa: fr(2), rb: r(9), disp: 24 },
            Instr::Stt { fa: fr(3), rb: r(9), disp: -24 },
            Instr::Jump { kind: JumpKind::Ret, ra: IntReg::ZERO, rb: r(26) },
            Instr::Br { ra: IntReg::ZERO, disp: -100 },
            Instr::Bsr { ra: r(26), disp: 1000 },
            Instr::CondBr { cond: BranchCond::Ne, ra: r(1), disp: -1 },
            Instr::FpCondBr { cond: FpBranchCond::Lt, fa: fr(1), disp: 3 },
            Instr::IntOp { func: IntFunc::Addq, ra: r(1), rb: Operand::Reg(r(2)), rc: r(3) },
            Instr::IntOp { func: IntFunc::Sll, ra: r(1), rb: Operand::Lit(63), rc: r(3) },
            Instr::FpOp { func: FpFunc::Mult, fa: fr(1), fb: fr(2), fc: fr(3) },
            Instr::Itoft { rb: r(7), fc: fr(7) },
            Instr::Ftoit { fa: fr(8), rc: r(8) },
        ];
        for i in &samples {
            let w = encode(i);
            let d = decode(w).unwrap_or_else(|e| panic!("{i}: {e}"));
            assert_eq!(&d, i, "word {w}");
        }
    }

    #[test]
    fn illegal_opcode_traps() {
        let w = RawInstr(0).with_field(format::OPCODE, 0x3u32);
        assert!(matches!(decode(w), Err(Trap::IllegalInstruction { .. })));
    }

    #[test]
    fn illegal_function_code_traps() {
        // Valid opcode (IntArith = 0x10) with an unimplemented function.
        let w = RawInstr(0).with_field(format::OPCODE, 0x10).with_field(format::FUNCTION, 0x7f);
        assert!(matches!(decode(w), Err(Trap::IllegalInstruction { .. })));
    }

    #[test]
    fn sbz_bits_are_tolerated() {
        // Flipping an SBZ bit of a register-mode operate must still decode to
        // the same instruction (the paper observed "strictly correct" for
        // unused-bit corruption).
        let i = Instr::IntOp { func: IntFunc::Addq, ra: r(1), rb: Operand::Reg(r(2)), rc: r(3) };
        let w = encode(&i).flip_bit(13); // bit 13 is SBZ
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn literal_flag_flips_operand_kind() {
        let i = Instr::IntOp { func: IntFunc::Addq, ra: r(1), rb: Operand::Reg(r(2)), rc: r(3) };
        let w = encode(&i).flip_bit(12); // literal flag
        match decode(w).unwrap() {
            Instr::IntOp { rb: Operand::Lit(_), .. } => {}
            other => panic!("expected literal operand, got {other}"),
        }
    }

    #[test]
    fn jump_hint_bits_select_kind() {
        for kind in [JumpKind::Jmp, JumpKind::Jsr, JumpKind::Ret] {
            let i = Instr::Jump { kind, ra: r(26), rb: r(27) };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn display_formats_read_like_assembly() {
        let i = Instr::Mem { op: MemOp::Ldq, ra: r(4), rb: IntReg::SP, disp: 16 };
        assert_eq!(i.to_string(), "ldq r4, 16(sp)");
        let i = Instr::IntOp { func: IntFunc::Addq, ra: r(1), rb: Operand::Lit(8), rc: r(2) };
        assert_eq!(i.to_string(), "addq r1, #8, r2");
    }

    #[test]
    fn classification_predicates() {
        let br = Instr::CondBr { cond: BranchCond::Eq, ra: r(0), disp: 0 };
        assert!(br.is_control() && br.is_cond_branch() && !br.is_mem());
        let st = Instr::Stt { fa: fr(0), rb: r(1), disp: 0 };
        assert!(st.is_mem() && st.is_store() && st.is_fp());
        let ld = Instr::Mem { op: MemOp::Ldl, ra: r(0), rb: r(1), disp: 0 };
        assert!(ld.is_mem() && !ld.is_store() && !ld.is_fp());
    }
}
