//! Alpha-subset guest ISA for the GemFI reproduction.
//!
//! This crate defines the instruction set simulated by the `ghost5`
//! full-system simulator. The encoding is bit-compatible with the four Alpha
//! instruction formats the paper reproduces in Table I:
//!
//! ```text
//! PALcode : opcode[31:26] | number[25:0]
//! Branch  : opcode[31:26] | Ra[25:21] | displacement[20:0]
//! Memory  : opcode[31:26] | Ra[25:21] | Rb[20:16] | displacement[15:0]
//! Operate : opcode[31:26] | Ra[25:21] | Rb[20:16] | SBZ[15:13] | lit[12] | function[11:5] | Rc[4:0]
//! ```
//!
//! Keeping the exact field positions matters for the reproduction: the
//! paper's Sec. IV-B validates fetched-instruction fault injection by
//! correlating the *bit position* of a flip with the architectural outcome
//! (flips in unused bits → strictly correct, flips in `opcode`/`function`
//! producing unimplemented encodings → illegal-instruction crash, flips in a
//! memory instruction's `displacement` → segmentation faults, …). The same
//! analysis is meaningful here because the fields occupy the same bits.
//!
//! Containment contract: decoding is total over `u32` — every word either
//! decodes or returns `Trap::IllegalInstruction`-shaped errors upstream, so
//! corrupted fetch words can never panic the simulator (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use gemfi_isa::{decode, encode, Instr, IntReg, Operand};
//! use gemfi_isa::opcode::IntFunc;
//!
//! let add = Instr::IntOp {
//!     func: IntFunc::Addq,
//!     ra: IntReg::new(1).unwrap(),
//!     rb: Operand::Reg(IntReg::new(2).unwrap()),
//!     rc: IntReg::new(3).unwrap(),
//! };
//! let word = encode(&add);
//! assert_eq!(decode(word).unwrap(), add);
//! ```

// Guest-reachable crate: new unwrap/expect sites need an explicit allow with
// a written justification (fault containment, see DESIGN.md).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod arch;
pub mod codec;
pub mod disasm;
pub mod format;
pub mod instr;
pub mod opcode;
pub mod predecode;
pub mod regs;
pub mod semantics;
pub mod superblock;
pub mod trap;

pub use arch::{ArchState, PSR_INT_ENABLE, PSR_KERNEL};
pub use disasm::disassemble;
pub use format::{Field, Format, RawInstr};
pub use instr::{decode, encode, Instr, JumpKind, MemOp, Operand};
pub use opcode::{BranchCond, FpBranchCond, FpFunc, IntFunc, Opcode, PalFunc};
pub use predecode::{PredecodeCache, PredecodeStats, DEFAULT_PREDECODE_ENTRIES};
pub use regs::{FpReg, IntReg, RegFile, RegRef, SpecialReg};
pub use superblock::{
    BlockRun, SbMemory, Superblock, SuperblockCache, SuperblockStats, DEFAULT_SUPERBLOCK_ENTRIES,
    MAX_SUPERBLOCK_UOPS,
};
pub use trap::{ExecError, SimError, Trap};

/// Size of one instruction word in bytes. All instructions are 32 bits.
pub const INSTR_BYTES: u64 = 4;

/// Number of architectural integer registers (R0–R31, R31 reads as zero).
pub const NUM_INT_REGS: usize = 32;

/// Number of architectural floating-point registers (F0–F31, F31 reads as zero).
pub const NUM_FP_REGS: usize = 32;
