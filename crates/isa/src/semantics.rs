//! Pure instruction semantics: the ALU/FPU evaluation functions shared by
//! every CPU model *and* by the superblock translator.
//!
//! These used to live in `gemfi_cpu::exec`; they moved down into the ISA
//! crate so the superblock micro-op handlers ([`crate::superblock`]) can
//! call them without a dependency cycle. `gemfi_cpu::exec` re-exports them,
//! so the models (and the O3 core's execution machinery) are unchanged.
//! Architectural behaviour must stay identical across models — the paper's
//! methodology switches models mid-run, which is only sound if they agree
//! functionally.

use crate::opcode::{FpBranchCond, FpFunc, IntFunc};

/// Evaluates an integer operate (no conditional moves; see [`cmov_cond`]).
pub fn alu(func: IntFunc, a: u64, b: u64) -> u64 {
    use IntFunc::*;
    match func {
        Addl => (a.wrapping_add(b) as i32) as i64 as u64,
        Addq => a.wrapping_add(b),
        Subl => (a.wrapping_sub(b) as i32) as i64 as u64,
        Subq => a.wrapping_sub(b),
        Cmpeq => (a == b) as u64,
        Cmplt => ((a as i64) < (b as i64)) as u64,
        Cmple => ((a as i64) <= (b as i64)) as u64,
        Cmpult => (a < b) as u64,
        Cmpule => (a <= b) as u64,
        S8addq => a.wrapping_mul(8).wrapping_add(b),
        And => a & b,
        Bic => a & !b,
        Bis => a | b,
        Ornot => a | !b,
        Xor => a ^ b,
        Eqv => !(a ^ b),
        Sll => a.wrapping_shl((b & 63) as u32),
        Srl => a.wrapping_shr((b & 63) as u32),
        Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Mull => (a.wrapping_mul(b) as i32) as i64 as u64,
        Mulq => a.wrapping_mul(b),
        Umulh => (((a as u128) * (b as u128)) >> 64) as u64,
        Cmoveq | Cmovne | Cmovlt | Cmovge | Cmovle | Cmovgt => {
            unreachable!("conditional moves are resolved by the caller")
        }
    }
}

/// For conditional moves, evaluates the move condition on `ra`; `None` for
/// non-cmov operations.
pub fn cmov_cond(func: IntFunc, ra: u64) -> Option<bool> {
    let s = ra as i64;
    Some(match func {
        IntFunc::Cmoveq => ra == 0,
        IntFunc::Cmovne => ra != 0,
        IntFunc::Cmovlt => s < 0,
        IntFunc::Cmovge => s >= 0,
        IntFunc::Cmovle => s <= 0,
        IntFunc::Cmovgt => s > 0,
        _ => return None,
    })
}

/// Evaluates an FP operate on raw IEEE-754 bit patterns (no FP conditional
/// moves; the caller resolves those like integer cmovs).
///
/// Arithmetic goes through host `f64` operations — IEEE-754 semantics are
/// deterministic and identical on every host, which keeps checkpoints and
/// golden outputs bit-stable.
pub fn fpu(func: FpFunc, a_bits: u64, b_bits: u64) -> u64 {
    use FpFunc::*;
    let a = f64::from_bits(a_bits);
    let b = f64::from_bits(b_bits);
    match func {
        Addt => (a + b).to_bits(),
        Subt => (a - b).to_bits(),
        Mult => (a * b).to_bits(),
        Divt => (a / b).to_bits(),
        Sqrtt => b.sqrt().to_bits(),
        // Alpha encodes FP compare results as 2.0 / 0.0.
        Cmpteq => {
            if a == b {
                2.0f64.to_bits()
            } else {
                0
            }
        }
        Cmptlt => {
            if a < b {
                2.0f64.to_bits()
            } else {
                0
            }
        }
        Cmptle => {
            if a <= b {
                2.0f64.to_bits()
            } else {
                0
            }
        }
        Cvtqt => (b_bits as i64 as f64).to_bits(),
        Cvttq => {
            // Truncate toward zero; saturate like hardware instead of UB.
            let t = b.trunc();
            if t.is_nan() {
                0
            } else if t >= i64::MAX as f64 {
                i64::MAX as u64
            } else if t <= i64::MIN as f64 {
                i64::MIN as u64
            } else {
                (t as i64) as u64
            }
        }
        Cpys => (a_bits & (1 << 63)) | (b_bits & !(1 << 63)),
        Cpysn => ((a_bits ^ (1 << 63)) & (1 << 63)) | (b_bits & !(1 << 63)),
        Fcmoveq | Fcmovne => unreachable!("FP conditional moves resolved by the caller"),
        Itoft | Ftoit => unreachable!("cross-bank moves have dedicated variants"),
    }
}

/// For FP conditional moves, evaluates the condition on `fa` bits.
pub fn fp_cmov_cond(func: FpFunc, fa_bits: u64) -> Option<bool> {
    match func {
        FpFunc::Fcmoveq => Some(FpBranchCond::Eq.eval(fa_bits)),
        FpFunc::Fcmovne => Some(FpBranchCond::Ne.eval(fa_bits)),
        _ => None,
    }
}
