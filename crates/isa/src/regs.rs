//! Architectural register identities and the register file.

use std::fmt;

/// An integer register index, `R0`–`R31`.
///
/// `R31` is architecturally wired to zero: reads return 0, writes are
/// discarded. The type guarantees the index is in range so the register file
/// can index arrays without bounds checks failing at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

impl IntReg {
    /// The always-zero register, `R31`.
    pub const ZERO: IntReg = IntReg(31);
    /// Stack pointer by software convention (`R30`).
    pub const SP: IntReg = IntReg(30);
    /// Return-address register by software convention (`R26`).
    pub const RA: IntReg = IntReg(26);
    /// Global pointer by software convention (`R29`).
    pub const GP: IntReg = IntReg(29);
    /// First argument register by software convention (`R16`).
    pub const A0: IntReg = IntReg(16);
    /// Second argument register (`R17`).
    pub const A1: IntReg = IntReg(17);
    /// Third argument register (`R18`).
    pub const A2: IntReg = IntReg(18);
    /// Return-value register (`R0`).
    pub const V0: IntReg = IntReg(0);

    /// Creates a register index, returning `None` if `n > 31`.
    pub const fn new(n: u8) -> Option<IntReg> {
        if n < 32 {
            Some(IntReg(n))
        } else {
            None
        }
    }

    /// Creates a register index from the low five bits of `n`.
    ///
    /// This is the decoder's (and the fault injector's) view: any 5-bit
    /// pattern names a valid register, so corrupting a register-selector
    /// field always yields a decodable instruction.
    pub fn from_bits(n: u32) -> IntReg {
        IntReg((n & 0x1f) as u8)
    }

    /// The register number, 0–31.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register `R31`.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IntReg::ZERO => write!(f, "zero"),
            IntReg::SP => write!(f, "sp"),
            IntReg::RA => write!(f, "ra"),
            IntReg::GP => write!(f, "gp"),
            r => write!(f, "r{}", r.0),
        }
    }
}

/// A floating-point register index, `F0`–`F31`. `F31` is wired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl FpReg {
    /// The always-zero register, `F31`.
    pub const ZERO: FpReg = FpReg(31);

    /// Creates a register index, returning `None` if `n > 31`.
    pub const fn new(n: u8) -> Option<FpReg> {
        if n < 32 {
            Some(FpReg(n))
        } else {
            None
        }
    }

    /// Creates a register index from the low five bits of `n`.
    pub fn from_bits(n: u32) -> FpReg {
        FpReg((n & 0x1f) as u8)
    }

    /// The register number, 0–31.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register `F31`.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Special (non-general-purpose) architectural registers.
///
/// These are the GemFI "special purpose register" fault locations: the
/// program counter, the PCB base register the kernel substrate uses to name
/// the running thread, and the processor status word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Program counter.
    Pc,
    /// Process-control-block base address of the running thread. GemFI keys
    /// its thread tracking on this value (Sec. III-C).
    PcbBase,
    /// Processor status: bit 0 = kernel mode, bit 1 = interrupts enabled.
    Psr,
    /// Address of the last exception, for diagnostics.
    ExcAddr,
}

impl SpecialReg {
    /// All special registers, in fault-location index order.
    pub const ALL: [SpecialReg; 4] =
        [SpecialReg::Pc, SpecialReg::PcbBase, SpecialReg::Psr, SpecialReg::ExcAddr];
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecialReg::Pc => write!(f, "pc"),
            SpecialReg::PcbBase => write!(f, "pcbb"),
            SpecialReg::Psr => write!(f, "psr"),
            SpecialReg::ExcAddr => write!(f, "excaddr"),
        }
    }
}

/// A reference to any architectural register, used by the fault engine to
/// track which location was corrupted and whether it was later consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
    /// A special register.
    Special(SpecialReg),
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Int(r) => write!(f, "{r}"),
            RegRef::Fp(r) => write!(f, "{r}"),
            RegRef::Special(r) => write!(f, "{r}"),
        }
    }
}

/// The architectural register file of one hardware thread context.
///
/// Floating-point registers are stored as raw `u64` bit patterns rather than
/// `f64` so that bit-level fault injection (flip/XOR/set) is exact and so
/// checkpoints are bit-stable across hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    int: [u64; super::NUM_INT_REGS],
    fp: [u64; super::NUM_FP_REGS],
}

impl RegFile {
    /// A register file with every register zeroed.
    pub fn new() -> RegFile {
        RegFile { int: [0; super::NUM_INT_REGS], fp: [0; super::NUM_FP_REGS] }
    }

    /// Reads an integer register; `R31` always reads as zero.
    pub fn read_int(&self, r: IntReg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.int[r.index()]
        }
    }

    /// Writes an integer register; writes to `R31` are discarded.
    pub fn write_int(&mut self, r: IntReg, value: u64) {
        if !r.is_zero() {
            self.int[r.index()] = value;
        }
    }

    /// Reads an FP register as raw bits; `F31` always reads as zero.
    pub fn read_fp_bits(&self, r: FpReg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.fp[r.index()]
        }
    }

    /// Reads an FP register as an `f64` value.
    pub fn read_fp(&self, r: FpReg) -> f64 {
        f64::from_bits(self.read_fp_bits(r))
    }

    /// Writes raw bits to an FP register; writes to `F31` are discarded.
    pub fn write_fp_bits(&mut self, r: FpReg, bits: u64) {
        if !r.is_zero() {
            self.fp[r.index()] = bits;
        }
    }

    /// Writes an `f64` value to an FP register.
    pub fn write_fp(&mut self, r: FpReg, value: f64) {
        self.write_fp_bits(r, value.to_bits());
    }

    /// Raw access for fault injection and checkpointing: the integer bank.
    pub fn int_bank_mut(&mut self) -> &mut [u64; super::NUM_INT_REGS] {
        &mut self.int
    }

    /// Raw access for fault injection and checkpointing: the FP bank.
    pub fn fp_bank_mut(&mut self) -> &mut [u64; super::NUM_FP_REGS] {
        &mut self.fp
    }

    /// Read-only view of the integer bank.
    pub fn int_bank(&self) -> &[u64; super::NUM_INT_REGS] {
        &self.int
    }

    /// Read-only view of the FP bank.
    pub fn fp_bank(&self) -> &[u64; super::NUM_FP_REGS] {
        &self.fp
    }
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r31_reads_zero_and_discards_writes() {
        let mut rf = RegFile::new();
        rf.write_int(IntReg::ZERO, 0xdead_beef);
        assert_eq!(rf.read_int(IntReg::ZERO), 0);
    }

    #[test]
    fn f31_reads_zero_and_discards_writes() {
        let mut rf = RegFile::new();
        rf.write_fp(FpReg::ZERO, 1.5);
        assert_eq!(rf.read_fp_bits(FpReg::ZERO), 0);
        assert_eq!(rf.read_fp(FpReg::ZERO), 0.0);
    }

    #[test]
    fn int_reg_new_rejects_out_of_range() {
        assert!(IntReg::new(32).is_none());
        assert!(IntReg::new(31).is_some());
        assert!(FpReg::new(200).is_none());
    }

    #[test]
    fn from_bits_masks_to_five_bits() {
        assert_eq!(IntReg::from_bits(0x3f).index(), 31);
        assert_eq!(FpReg::from_bits(33).index(), 1);
    }

    #[test]
    fn regfile_roundtrips_values() {
        let mut rf = RegFile::new();
        let r5 = IntReg::new(5).unwrap();
        rf.write_int(r5, u64::MAX);
        assert_eq!(rf.read_int(r5), u64::MAX);
        let f2 = FpReg::new(2).unwrap();
        rf.write_fp(f2, -0.75);
        assert_eq!(rf.read_fp(f2), -0.75);
    }

    #[test]
    fn display_names_match_convention() {
        assert_eq!(IntReg::SP.to_string(), "sp");
        assert_eq!(IntReg::new(4).unwrap().to_string(), "r4");
        assert_eq!(FpReg::new(7).unwrap().to_string(), "f7");
        assert_eq!(SpecialReg::Pc.to_string(), "pc");
    }
}
