//! Superblock translation cache: threaded micro-op dispatch for the
//! interpreter hot loop.
//!
//! A *superblock* is a straight-line guest region pre-translated into fully
//! resolved micro-ops: operands lowered to register indices and immediates
//! (branch targets, link values, and shifted displacements folded at
//! translation time), each micro-op carrying a handler function pointer.
//! Executing a block is a threaded-dispatch loop over a flat `Vec<MicroOp>`
//! instead of fetch → decode → big-`match` per instruction — the layer above
//! the predecode cache ([`crate::predecode`]), which still pays the per-word
//! fetch and the interpreter `match`.
//!
//! Blocks end *at* a control-flow instruction (branch/jump, included as the
//! final micro-op with its targets precomputed) and *before* anything the
//! fast path must not swallow: PAL calls, the `fi_*` pseudo-ops, and
//! undecodable or unfetchable words all refuse translation, so halts,
//! checkpoint requests, and fault activations only ever happen on the
//! per-instruction path.
//!
//! Execution discipline (enforced by `Machine::sprint`, not here): blocks
//! run only while the fault engine is dormant, on the atomic CPU model, with
//! no cache lesions planted — the micro-op handlers skip the cache-hierarchy
//! walk (tick-invisible on atomic, which charges one tick per committed
//! instruction regardless of memory latency) and apply no per-event fault
//! hooks. The executor returns the exact per-stage event counts the
//! per-instruction path would have produced, so bulk absorption into the
//! engine ([`FaultHooks::absorb_elided`]-style accounting) stays
//! event-for-event identical.
//!
//! Coherence: like the predecode cache, translations are *derived state* —
//! never serialized, dropped on checkpoint capture/restore/CPU-switch, and
//! invalidated by every store path. A store landing inside the block
//! currently being executed stops the block after that store commits, so
//! self-modifying code observes its own patch exactly as the per-instruction
//! path would.

use crate::instr::{decode, Instr, MemOp, Operand};
use crate::opcode::{BranchCond, FpBranchCond, FpFunc, IntFunc};
use crate::regs::{FpReg, IntReg};
use crate::semantics::{alu, cmov_cond, fp_cmov_cond, fpu};
use crate::trap::Trap;
use crate::{ArchState, RawInstr};
use std::sync::Arc;

/// Default number of superblock cache slots (direct-mapped by start PC).
pub const DEFAULT_SUPERBLOCK_ENTRIES: usize = 2048;

/// Maximum micro-ops per superblock. Bounds the tick/event budget a block
/// needs up front, so the sprint can pre-check that executing the whole
/// block cannot cross its deadline or event horizon.
pub const MAX_SUPERBLOCK_UOPS: usize = 64;

/// The memory surface micro-op handlers drive: untimed physical loads and
/// stores. Implementations (the real one is `gemfi_mem::MemorySystem`) must
/// keep stores coherent — invalidating overlapping predecode entries *and*
/// superblock translations — exactly like their timed store paths.
pub trait SbMemory {
    /// 64-bit load. `pc` attributes a trap to the faulting instruction.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    fn load_u64(&mut self, addr: u64, pc: u64) -> Result<u64, Trap>;

    /// 32-bit load.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    fn load_u32(&mut self, addr: u64, pc: u64) -> Result<u32, Trap>;

    /// 64-bit store.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    fn store_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<(), Trap>;

    /// 32-bit store.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    fn store_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<(), Trap>;
}

/// Execution context threaded through the micro-op handlers.
pub struct SbCtx<'a> {
    arch: &'a mut ArchState,
    mem: &'a mut dyn SbMemory,
    /// Execute-stage events (one per `on_execute_result` call the
    /// per-instruction path would have made).
    exec_events: u64,
    /// Memory-stage events (`on_mem_load` after a successful read,
    /// `on_mem_store` before the write).
    mem_events: u64,
    /// Set when a store landed inside this block's own range: the block must
    /// stop after the store commits (self-modifying code).
    stop: bool,
    block_start: u64,
    block_end: u64,
}

type Handler = fn(&mut SbCtx<'_>, &MicroOp) -> Result<(), Trap>;

/// One fully pre-resolved micro-op. Register numbers are raw 5-bit indices
/// (`a`/`b` sources, `c` destination — which bank depends on the handler);
/// `imm` holds whatever the handler needs folded: a sign-extended (and for
/// `ldah`, pre-shifted) displacement, an operate literal, or a precomputed
/// branch target.
#[derive(Debug, Clone, Copy)]
pub struct MicroOp {
    handler: Handler,
    a: u8,
    b: u8,
    c: u8,
    ifunc: IntFunc,
    ffunc: FpFunc,
    imm: u64,
    /// Guest PC this micro-op was translated from.
    pc: u64,
}

impl PartialEq for MicroOp {
    fn eq(&self, other: &MicroOp) -> bool {
        // fn pointers are compared via `fn_addr_eq` (the derive would trip
        // the unpredictable-fn-pointer-comparison lint); two micro-ops
        // lowered from the same word at the same PC always share a handler.
        std::ptr::fn_addr_eq(self.handler, other.handler)
            && (self.a, self.b, self.c) == (other.a, other.b, other.c)
            && (self.ifunc, self.ffunc) == (other.ifunc, other.ffunc)
            && (self.imm, self.pc) == (other.imm, other.pc)
    }
}

#[inline]
fn ireg(n: u8) -> IntReg {
    IntReg::from_bits(u32::from(n))
}

#[inline]
fn freg(n: u8) -> FpReg {
    FpReg::from_bits(u32::from(n))
}

/// Commits a fall-through micro-op: the architectural PC advances past it.
/// Handlers call this (or set a branch target) only on success, so a trap
/// leaves `arch.pc` at the trapping instruction — identical to the
/// per-instruction path, which assigns `next_pc` after the execute match.
#[inline]
fn advance(ctx: &mut SbCtx<'_>, op: &MicroOp) {
    ctx.arch.pc = op.pc.wrapping_add(4);
}

fn h_lea(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let v = ctx.arch.regs.read_int(ireg(op.b)).wrapping_add(op.imm);
    ctx.exec_events += 1;
    ctx.arch.regs.write_int(ireg(op.c), v);
    advance(ctx, op);
    Ok(())
}

fn h_int_rr(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let a = ctx.arch.regs.read_int(ireg(op.a));
    let b = ctx.arch.regs.read_int(ireg(op.b));
    let v = alu(op.ifunc, a, b);
    ctx.exec_events += 1;
    ctx.arch.regs.write_int(ireg(op.c), v);
    advance(ctx, op);
    Ok(())
}

fn h_int_ri(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let a = ctx.arch.regs.read_int(ireg(op.a));
    let v = alu(op.ifunc, a, op.imm);
    ctx.exec_events += 1;
    ctx.arch.regs.write_int(ireg(op.c), v);
    advance(ctx, op);
    Ok(())
}

fn h_cmov_rr(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let a = ctx.arch.regs.read_int(ireg(op.a));
    if cmov_cond(op.ifunc, a) == Some(true) {
        let b = ctx.arch.regs.read_int(ireg(op.b));
        ctx.exec_events += 1;
        ctx.arch.regs.write_int(ireg(op.c), b);
    }
    advance(ctx, op);
    Ok(())
}

fn h_cmov_ri(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let a = ctx.arch.regs.read_int(ireg(op.a));
    if cmov_cond(op.ifunc, a) == Some(true) {
        ctx.exec_events += 1;
        ctx.arch.regs.write_int(ireg(op.c), op.imm);
    }
    advance(ctx, op);
    Ok(())
}

fn h_fp(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let a = ctx.arch.regs.read_fp_bits(freg(op.a));
    let b = ctx.arch.regs.read_fp_bits(freg(op.b));
    let v = fpu(op.ffunc, a, b);
    ctx.exec_events += 1;
    ctx.arch.regs.write_fp_bits(freg(op.c), v);
    advance(ctx, op);
    Ok(())
}

fn h_fp_cmov(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let a = ctx.arch.regs.read_fp_bits(freg(op.a));
    if fp_cmov_cond(op.ffunc, a) == Some(true) {
        let b = ctx.arch.regs.read_fp_bits(freg(op.b));
        ctx.exec_events += 1;
        ctx.arch.regs.write_fp_bits(freg(op.c), b);
    }
    advance(ctx, op);
    Ok(())
}

fn h_itoft(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let v = ctx.arch.regs.read_int(ireg(op.b));
    ctx.exec_events += 1;
    ctx.arch.regs.write_fp_bits(freg(op.c), v);
    advance(ctx, op);
    Ok(())
}

fn h_ftoit(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let v = ctx.arch.regs.read_fp_bits(freg(op.a));
    ctx.exec_events += 1;
    ctx.arch.regs.write_int(ireg(op.c), v);
    advance(ctx, op);
    Ok(())
}

fn h_ldq(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let addr = ctx.arch.regs.read_int(ireg(op.b)).wrapping_add(op.imm);
    ctx.exec_events += 1;
    let v = ctx.mem.load_u64(addr, op.pc)?;
    ctx.mem_events += 1;
    ctx.arch.regs.write_int(ireg(op.c), v);
    advance(ctx, op);
    Ok(())
}

fn h_ldl(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let addr = ctx.arch.regs.read_int(ireg(op.b)).wrapping_add(op.imm);
    ctx.exec_events += 1;
    let v = ctx.mem.load_u32(addr, op.pc)?;
    ctx.mem_events += 1;
    ctx.arch.regs.write_int(ireg(op.c), v as i32 as i64 as u64);
    advance(ctx, op);
    Ok(())
}

fn h_ldt(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let addr = ctx.arch.regs.read_int(ireg(op.b)).wrapping_add(op.imm);
    ctx.exec_events += 1;
    let v = ctx.mem.load_u64(addr, op.pc)?;
    ctx.mem_events += 1;
    ctx.arch.regs.write_fp_bits(freg(op.c), v);
    advance(ctx, op);
    Ok(())
}

/// A store landing inside the executing block's own range must stop the
/// block after it commits: later micro-ops were translated from the bytes
/// this store just overwrote.
#[inline]
fn note_store(ctx: &mut SbCtx<'_>, addr: u64, width: u64) {
    if addr < ctx.block_end && addr.saturating_add(width) > ctx.block_start {
        ctx.stop = true;
    }
}

fn h_stq(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let addr = ctx.arch.regs.read_int(ireg(op.b)).wrapping_add(op.imm);
    ctx.exec_events += 1;
    let v = ctx.arch.regs.read_int(ireg(op.a));
    // The memory-stage event counts *before* the write, matching the
    // per-instruction hook order (`on_mem_store`, then the write — which
    // may still trap).
    ctx.mem_events += 1;
    ctx.mem.store_u64(addr, v, op.pc)?;
    note_store(ctx, addr, 8);
    advance(ctx, op);
    Ok(())
}

fn h_stl(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let addr = ctx.arch.regs.read_int(ireg(op.b)).wrapping_add(op.imm);
    ctx.exec_events += 1;
    let v = ctx.arch.regs.read_int(ireg(op.a));
    ctx.mem_events += 1;
    ctx.mem.store_u32(addr, v as u32, op.pc)?;
    note_store(ctx, addr, 4);
    advance(ctx, op);
    Ok(())
}

fn h_stt(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let addr = ctx.arch.regs.read_int(ireg(op.b)).wrapping_add(op.imm);
    ctx.exec_events += 1;
    let v = ctx.arch.regs.read_fp_bits(freg(op.a));
    ctx.mem_events += 1;
    ctx.mem.store_u64(addr, v, op.pc)?;
    note_store(ctx, addr, 8);
    advance(ctx, op);
    Ok(())
}

fn h_jump(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    let target = ctx.arch.regs.read_int(ireg(op.b)) & !3;
    ctx.exec_events += 1;
    // `imm` holds the precomputed link value (pc + 4).
    ctx.arch.regs.write_int(ireg(op.c), op.imm);
    ctx.arch.pc = target;
    Ok(())
}

fn h_br(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
    // `imm` holds the precomputed unconditional target.
    ctx.exec_events += 1;
    ctx.arch.regs.write_int(ireg(op.c), op.pc.wrapping_add(4));
    ctx.arch.pc = op.imm;
    Ok(())
}

macro_rules! condbr_handlers {
    ($($name:ident => $cond:expr,)*) => {
        $(fn $name(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
            let v = ctx.arch.regs.read_int(ireg(op.a));
            // `imm` holds the precomputed taken target.
            let target = if $cond.eval(v) { op.imm } else { op.pc.wrapping_add(4) };
            ctx.exec_events += 1;
            ctx.arch.pc = target;
            Ok(())
        })*
    };
}

condbr_handlers! {
    h_beq => BranchCond::Eq,
    h_bne => BranchCond::Ne,
    h_blt => BranchCond::Lt,
    h_ble => BranchCond::Le,
    h_bgt => BranchCond::Gt,
    h_bge => BranchCond::Ge,
    h_blbc => BranchCond::Lbc,
    h_blbs => BranchCond::Lbs,
}

macro_rules! fp_condbr_handlers {
    ($($name:ident => $cond:expr,)*) => {
        $(fn $name(ctx: &mut SbCtx<'_>, op: &MicroOp) -> Result<(), Trap> {
            let v = ctx.arch.regs.read_fp_bits(freg(op.a));
            let target = if $cond.eval(v) { op.imm } else { op.pc.wrapping_add(4) };
            ctx.exec_events += 1;
            ctx.arch.pc = target;
            Ok(())
        })*
    };
}

fp_condbr_handlers! {
    h_fbeq => FpBranchCond::Eq,
    h_fbne => FpBranchCond::Ne,
    h_fblt => FpBranchCond::Lt,
    h_fble => FpBranchCond::Le,
    h_fbgt => FpBranchCond::Gt,
    h_fbge => FpBranchCond::Ge,
}

fn condbr_handler(cond: BranchCond) -> Handler {
    match cond {
        BranchCond::Eq => h_beq,
        BranchCond::Ne => h_bne,
        BranchCond::Lt => h_blt,
        BranchCond::Le => h_ble,
        BranchCond::Gt => h_bgt,
        BranchCond::Ge => h_bge,
        BranchCond::Lbc => h_blbc,
        BranchCond::Lbs => h_blbs,
    }
}

fn fp_condbr_handler(cond: FpBranchCond) -> Handler {
    match cond {
        FpBranchCond::Eq => h_fbeq,
        FpBranchCond::Ne => h_fbne,
        FpBranchCond::Lt => h_fblt,
        FpBranchCond::Le => h_fble,
        FpBranchCond::Gt => h_fbgt,
        FpBranchCond::Ge => h_fbge,
    }
}

/// What [`lower`] produced for one decoded instruction.
enum Lowered {
    /// A straight-line micro-op; translation continues past it.
    Op(MicroOp),
    /// A control-flow micro-op; it ends the block (and executes in it).
    Terminal(MicroOp),
    /// The instruction must not run inside a block (PAL call, `fi_*`
    /// pseudo-op): the block ends *before* it.
    Refuse,
}

/// Lowers one decoded instruction at `pc` into a micro-op.
fn lower(instr: Instr, pc: u64) -> Lowered {
    let base = MicroOp {
        handler: h_lea,
        a: 0,
        b: 0,
        c: 0,
        ifunc: IntFunc::Addq,
        ffunc: FpFunc::Addt,
        imm: 0,
        pc,
    };
    let branch_target = |disp: i32| pc.wrapping_add(4).wrapping_add((i64::from(disp) as u64) << 2);
    match instr {
        Instr::CallPal { .. } | Instr::FiActivate { .. } | Instr::FiReadInit => Lowered::Refuse,
        Instr::Lda { ra, rb, disp } => Lowered::Op(MicroOp {
            handler: h_lea,
            b: rb.index() as u8,
            c: ra.index() as u8,
            imm: disp as i64 as u64,
            ..base
        }),
        Instr::Ldah { ra, rb, disp } => Lowered::Op(MicroOp {
            handler: h_lea,
            b: rb.index() as u8,
            c: ra.index() as u8,
            imm: (disp as i64 as u64).wrapping_shl(16),
            ..base
        }),
        Instr::Mem { op, ra, rb, disp } => {
            let handler = match (op, op.is_store()) {
                (MemOp::Ldl, _) => h_ldl,
                (MemOp::Ldq, _) => h_ldq,
                (MemOp::Stl, _) => h_stl,
                (MemOp::Stq, _) => h_stq,
            };
            let (a, c) = if op.is_store() { (ra.index() as u8, 0) } else { (0, ra.index() as u8) };
            Lowered::Op(MicroOp {
                handler,
                a,
                b: rb.index() as u8,
                c,
                imm: disp as i64 as u64,
                ..base
            })
        }
        Instr::Ldt { fa, rb, disp } => Lowered::Op(MicroOp {
            handler: h_ldt,
            b: rb.index() as u8,
            c: fa.index() as u8,
            imm: disp as i64 as u64,
            ..base
        }),
        Instr::Stt { fa, rb, disp } => Lowered::Op(MicroOp {
            handler: h_stt,
            a: fa.index() as u8,
            b: rb.index() as u8,
            imm: disp as i64 as u64,
            ..base
        }),
        Instr::Jump { ra, rb, .. } => Lowered::Terminal(MicroOp {
            handler: h_jump,
            b: rb.index() as u8,
            c: ra.index() as u8,
            imm: pc.wrapping_add(4),
            ..base
        }),
        Instr::Br { ra, disp } | Instr::Bsr { ra, disp } => Lowered::Terminal(MicroOp {
            handler: h_br,
            c: ra.index() as u8,
            imm: branch_target(disp),
            ..base
        }),
        Instr::CondBr { cond, ra, disp } => Lowered::Terminal(MicroOp {
            handler: condbr_handler(cond),
            a: ra.index() as u8,
            imm: branch_target(disp),
            ..base
        }),
        Instr::FpCondBr { cond, fa, disp } => Lowered::Terminal(MicroOp {
            handler: fp_condbr_handler(cond),
            a: fa.index() as u8,
            imm: branch_target(disp),
            ..base
        }),
        Instr::IntOp { func, ra, rb, rc } => {
            let is_cmov = cmov_cond(func, 0).is_some();
            let (handler, b, imm) = match rb {
                Operand::Reg(r) => (if is_cmov { h_cmov_rr } else { h_int_rr }, r.index() as u8, 0),
                Operand::Lit(v) => (if is_cmov { h_cmov_ri } else { h_int_ri }, 0, u64::from(v)),
            };
            Lowered::Op(MicroOp {
                handler,
                a: ra.index() as u8,
                b,
                c: rc.index() as u8,
                ifunc: func,
                imm,
                ..base
            })
        }
        Instr::FpOp { func, fa, fb, fc } => {
            let handler = if fp_cmov_cond(func, 0).is_some() { h_fp_cmov } else { h_fp };
            Lowered::Op(MicroOp {
                handler,
                a: fa.index() as u8,
                b: fb.index() as u8,
                c: fc.index() as u8,
                ffunc: func,
                ..base
            })
        }
        Instr::Itoft { rb, fc } => Lowered::Op(MicroOp {
            handler: h_itoft,
            b: rb.index() as u8,
            c: fc.index() as u8,
            ..base
        }),
        Instr::Ftoit { fa, rc } => Lowered::Op(MicroOp {
            handler: h_ftoit,
            a: fa.index() as u8,
            c: rc.index() as u8,
            ..base
        }),
    }
}

/// A translated straight-line region: `[start, end)` guest bytes lowered to
/// micro-ops, ending at (and including) the first control-flow instruction
/// or stopping before the first refused/unfetchable word.
#[derive(Debug, Clone, PartialEq)]
pub struct Superblock {
    start: u64,
    end: u64,
    uops: Vec<MicroOp>,
}

/// The result of running one superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRun {
    /// Micro-ops that fully committed.
    pub committed: u64,
    /// Micro-ops that *started* (committed, plus the trapping one if any) —
    /// each started micro-op produced one fetch and one decode event.
    pub started: u64,
    /// Per-stage event counts in stage-queue order (fetch, decode, execute,
    /// memory, commit), exactly what the per-instruction hook path would
    /// have counted for the same instructions.
    pub events: [u64; 5],
    /// The guest trap that stopped the block, if one did.
    pub trap: Option<Trap>,
}

impl Superblock {
    /// First guest byte covered.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last guest byte covered.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of micro-ops (= guest instructions) in the block.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the block is empty (never true for installed blocks).
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Executes the block from its first micro-op, stopping at the terminal
    /// micro-op, the first trap, or a store into the block's own range.
    ///
    /// On a trap, `arch.pc` is left at the trapping instruction (matching
    /// the per-instruction path, which assigns the next PC only on success).
    pub fn execute(&self, arch: &mut ArchState, mem: &mut dyn SbMemory) -> BlockRun {
        let mut ctx = SbCtx {
            arch,
            mem,
            exec_events: 0,
            mem_events: 0,
            stop: false,
            block_start: self.start,
            block_end: self.end,
        };
        let mut committed = 0u64;
        let mut started = 0u64;
        let mut trap = None;
        for op in &self.uops {
            started += 1;
            match (op.handler)(&mut ctx, op) {
                Ok(()) => committed += 1,
                Err(t) => {
                    trap = Some(t);
                    break;
                }
            }
            if ctx.stop {
                break;
            }
        }
        let events = [started, started, ctx.exec_events, ctx.mem_events, committed];
        BlockRun { committed, started, events, trap }
    }
}

/// Translates the straight-line region starting at `start` into a
/// superblock. `fetch` reads one aligned instruction word (functionally —
/// translation happens on the host side of the timeline); returning `None`
/// (unmapped, misaligned) ends the block before that word.
///
/// Returns `None` when not even the first word translates — the caller
/// falls back to the per-instruction path, which raises the proper trap or
/// handles the pseudo-op.
pub fn translate(start: u64, mut fetch: impl FnMut(u64) -> Option<u32>) -> Option<Superblock> {
    let mut uops = Vec::new();
    let mut pc = start;
    while uops.len() < MAX_SUPERBLOCK_UOPS {
        let Some(word) = fetch(pc) else { break };
        let Ok(instr) = decode(RawInstr(word)) else { break };
        match lower(instr, pc) {
            Lowered::Op(op) => {
                uops.push(op);
                pc = pc.wrapping_add(4);
            }
            Lowered::Terminal(op) => {
                uops.push(op);
                pc = pc.wrapping_add(4);
                break;
            }
            Lowered::Refuse => break,
        }
    }
    if uops.is_empty() {
        return None;
    }
    Some(Superblock { start, end: pc, uops })
}

/// Counters of the superblock machinery (derived state, reset with it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Translations installed.
    pub blocks_built: u64,
    /// Lookups served by a cached block.
    pub hits: u64,
    /// Lookups that found no cached block for the PC.
    pub misses: u64,
    /// Micro-ops committed through block execution.
    pub uops_executed: u64,
    /// Cached blocks dropped by overlapping stores.
    pub invalidations: u64,
    /// Fallbacks because the head instruction refused translation.
    pub untranslatable: u64,
    /// Fallbacks because a cached block did not fit the sprint's remaining
    /// tick or event budget.
    pub budget_fallbacks: u64,
}

/// Direct-mapped superblock cache, keyed by block start PC.
///
/// Like the predecode cache this is purely derived state: never serialized,
/// cleared on checkpoint capture/restore and CPU-model switches, and
/// invalidated by every store path. The `span` summary (min start / max end
/// over live blocks) lets the store paths reject non-code stores with two
/// compares instead of a cache scan.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperblockCache {
    enabled: bool,
    mask: u64,
    entries: Vec<Option<Arc<Superblock>>>,
    /// `(min start, max end)` over live entries; `None` when empty. May
    /// overstate after evictions — only ever conservative.
    span: Option<(u64, u64)>,
    stats: SuperblockStats,
}

impl SuperblockCache {
    /// A cache with [`DEFAULT_SUPERBLOCK_ENTRIES`] slots.
    pub fn new(enabled: bool) -> SuperblockCache {
        SuperblockCache::with_entries(DEFAULT_SUPERBLOCK_ENTRIES, enabled)
    }

    /// A cache with `entries` slots (rounded up to a power of two).
    pub fn with_entries(entries: usize, enabled: bool) -> SuperblockCache {
        let n = entries.next_power_of_two().max(1);
        SuperblockCache {
            enabled,
            mask: (n - 1) as u64,
            entries: if enabled { vec![None; n] } else { Vec::new() },
            span: None,
            stats: SuperblockStats::default(),
        }
    }

    /// Whether the knob is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Flips the knob. Disabling drops every translation and all counters
    /// (the cache must leave no trace when ablated away).
    pub fn set_enabled(&mut self, enabled: bool) {
        if self.enabled == enabled {
            return;
        }
        let n = (self.mask + 1) as usize;
        self.enabled = enabled;
        self.entries = if enabled { vec![None; n] } else { Vec::new() };
        self.span = None;
        self.stats = SuperblockStats::default();
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// The cached block starting exactly at `pc`, counting hit/miss.
    pub fn lookup(&mut self, pc: u64) -> Option<Arc<Superblock>> {
        if !self.enabled {
            return None;
        }
        let i = self.index(pc);
        match self.entries.get(i) {
            Some(Some(b)) if b.start == pc => {
                self.stats.hits += 1;
                Some(Arc::clone(b))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs a freshly translated block, returning the shared handle
    /// (the caller usually executes it immediately). A colliding resident
    /// block is evicted.
    pub fn install(&mut self, block: Superblock) -> Arc<Superblock> {
        let handle = Arc::new(block);
        if !self.enabled {
            return handle;
        }
        self.stats.blocks_built += 1;
        self.span = Some(match self.span {
            Some((lo, hi)) => (lo.min(handle.start), hi.max(handle.end)),
            None => (handle.start, handle.end),
        });
        let i = self.index(handle.start);
        if let Some(slot) = self.entries.get_mut(i) {
            *slot = Some(Arc::clone(&handle));
        }
        handle
    }

    /// Notes micro-ops committed through block execution.
    #[inline]
    pub fn note_executed(&mut self, uops: u64) {
        self.stats.uops_executed += uops;
    }

    /// Notes a cached block skipped because it did not fit the sprint's
    /// remaining tick or event budget.
    #[inline]
    pub fn note_budget_fallback(&mut self) {
        self.stats.budget_fallbacks += 1;
    }

    /// Notes a head instruction that refused translation.
    #[inline]
    pub fn note_untranslatable(&mut self) {
        self.stats.untranslatable += 1;
    }

    /// Drops every cached block overlapping `[addr, addr + len)` (store
    /// coherence — mirrors [`crate::predecode::PredecodeCache`]).
    pub fn invalidate_range(&mut self, addr: u64, len: u64) {
        if !self.enabled || len == 0 {
            return;
        }
        let Some((lo, hi)) = self.span else { return };
        let end = addr.saturating_add(len);
        if end <= lo || addr >= hi {
            return;
        }
        let mut span = None;
        for slot in &mut self.entries {
            let Some(b) = slot else { continue };
            if b.start < end && b.end > addr {
                self.stats.invalidations += 1;
                *slot = None;
            } else {
                span = Some(match span {
                    Some((l, h)) => (u64::min(l, b.start), u64::max(h, b.end)),
                    None => (b.start, b.end),
                });
            }
        }
        self.span = span;
    }

    /// Drops every translation *and* every counter (derived-state reset on
    /// checkpoint capture/restore and CPU-model switch).
    pub fn clear(&mut self) {
        for slot in &mut self.entries {
            *slot = None;
        }
        self.span = None;
        self.stats = SuperblockStats::default();
    }

    /// Current counters.
    pub fn stats(&self) -> SuperblockStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::encode;
    use crate::regs::RegFile;

    /// Little-endian flat test memory.
    struct TestMem {
        bytes: Vec<u8>,
    }

    impl TestMem {
        fn new(size: usize) -> TestMem {
            TestMem { bytes: vec![0; size] }
        }

        fn put_u32(&mut self, addr: u64, v: u32) {
            self.bytes[addr as usize..addr as usize + 4].copy_from_slice(&v.to_le_bytes());
        }

        fn get_u64(&self, addr: u64) -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.bytes[addr as usize..addr as usize + 8]);
            u64::from_le_bytes(b)
        }

        fn word(&self, addr: u64) -> Option<u32> {
            if !addr.is_multiple_of(4) || addr as usize + 4 > self.bytes.len() {
                return None;
            }
            let mut b = [0u8; 4];
            b.copy_from_slice(&self.bytes[addr as usize..addr as usize + 4]);
            Some(u32::from_le_bytes(b))
        }
    }

    impl SbMemory for TestMem {
        fn load_u64(&mut self, addr: u64, pc: u64) -> Result<u64, Trap> {
            if !addr.is_multiple_of(8) {
                return Err(Trap::MisalignedAccess { addr, pc });
            }
            if addr as usize + 8 > self.bytes.len() {
                return Err(Trap::UnmappedAccess { addr, pc });
            }
            Ok(self.get_u64(addr))
        }

        fn load_u32(&mut self, addr: u64, pc: u64) -> Result<u32, Trap> {
            if !addr.is_multiple_of(4) {
                return Err(Trap::MisalignedAccess { addr, pc });
            }
            self.word(addr).ok_or(Trap::UnmappedAccess { addr, pc })
        }

        fn store_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<(), Trap> {
            if !addr.is_multiple_of(8) {
                return Err(Trap::MisalignedAccess { addr, pc });
            }
            if addr as usize + 8 > self.bytes.len() {
                return Err(Trap::UnmappedAccess { addr, pc });
            }
            self.bytes[addr as usize..addr as usize + 8].copy_from_slice(&value.to_le_bytes());
            Ok(())
        }

        fn store_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<(), Trap> {
            if !addr.is_multiple_of(4) {
                return Err(Trap::MisalignedAccess { addr, pc });
            }
            if addr as usize + 4 > self.bytes.len() {
                return Err(Trap::UnmappedAccess { addr, pc });
            }
            self.put_u32(addr, value);
            Ok(())
        }
    }

    fn r(n: u8) -> IntReg {
        IntReg::from_bits(u32::from(n))
    }

    fn addq_lit(ra: u8, lit: u8, rc: u8) -> Instr {
        Instr::IntOp { func: IntFunc::Addq, ra: r(ra), rb: Operand::Lit(lit), rc: r(rc) }
    }

    fn program(mem: &mut TestMem, start: u64, instrs: &[Instr]) {
        for (i, instr) in instrs.iter().enumerate() {
            mem.put_u32(start + 4 * i as u64, encode(instr).0);
        }
    }

    #[test]
    fn translate_ends_at_control_flow_and_includes_it() {
        let mut mem = TestMem::new(0x1000);
        program(
            &mut mem,
            0x100,
            &[
                addq_lit(1, 5, 1),
                addq_lit(1, 1, 2),
                Instr::CondBr { cond: BranchCond::Ne, ra: r(2), disp: -3 },
                addq_lit(3, 9, 3), // past the branch: not part of the block
            ],
        );
        let b = translate(0x100, |a| mem.word(a)).expect("translates");
        assert_eq!((b.start(), b.end(), b.len()), (0x100, 0x10c, 3));
    }

    #[test]
    fn translate_stops_before_pseudo_ops_and_refuses_empty_heads() {
        let mut mem = TestMem::new(0x1000);
        program(&mut mem, 0x200, &[addq_lit(1, 1, 1), Instr::FiReadInit]);
        let b = translate(0x200, |a| mem.word(a)).expect("translates");
        assert_eq!(b.len(), 1, "block ends before the pseudo-op");
        assert!(translate(0x204, |a| mem.word(a)).is_none(), "pseudo-op head refuses");
        assert!(translate(0x999, |a| mem.word(a)).is_none(), "misaligned head refuses");
    }

    #[test]
    fn straight_line_block_matches_hand_evaluation_and_counts_events() {
        let mut mem = TestMem::new(0x1000);
        // r1 = 7; r2 = r1 + r1; stq r2 -> 0x800; r3 = ldq 0x800
        program(
            &mut mem,
            0x100,
            &[
                addq_lit(31, 7, 1),
                Instr::IntOp { func: IntFunc::Addq, ra: r(1), rb: Operand::Reg(r(1)), rc: r(2) },
                Instr::Lda { ra: r(4), rb: r(31), disp: 0x800 },
                Instr::Mem { op: MemOp::Stq, ra: r(2), rb: r(4), disp: 0 },
                Instr::Mem { op: MemOp::Ldq, ra: r(3), rb: r(4), disp: 0 },
            ],
        );
        let b = translate(0x100, |a| mem.word(a)).expect("translates");
        assert_eq!(b.len(), 5);
        let mut arch = ArchState { regs: RegFile::default(), pc: 0x100, ..ArchState::default() };
        let run = b.execute(&mut arch, &mut mem);
        assert_eq!(run.trap, None);
        assert_eq!(run.committed, 5);
        assert_eq!(arch.regs.read_int(r(2)), 14);
        assert_eq!(arch.regs.read_int(r(3)), 14);
        assert_eq!(mem.get_u64(0x800), 14);
        assert_eq!(arch.pc, 0x114, "fell through the whole block");
        // fetch/decode once per started op; one execute per op; the store
        // and the load each produce one memory event; all five commit.
        assert_eq!(run.events, [5, 5, 5, 2, 5]);
    }

    #[test]
    fn conditional_branch_takes_the_precomputed_target() {
        let mut mem = TestMem::new(0x1000);
        program(
            &mut mem,
            0x100,
            &[addq_lit(31, 1, 1), Instr::CondBr { cond: BranchCond::Ne, ra: r(1), disp: 4 }],
        );
        let b = translate(0x100, |a| mem.word(a)).expect("translates");
        let mut arch = ArchState { pc: 0x100, ..ArchState::default() };
        let run = b.execute(&mut arch, &mut mem);
        assert_eq!(run.committed, 2);
        // taken target: pc+4 + disp*4 = 0x108 + 16 = 0x118
        assert_eq!(arch.pc, 0x118);
        // not taken falls through
        let mut arch2 = ArchState { pc: 0x100, ..ArchState::default() };
        arch2.regs.write_int(r(1), 0);
        mem.put_u32(0x100, encode(&addq_lit(31, 0, 1)).0);
        let b2 = translate(0x100, |a| mem.word(a)).expect("translates");
        let run2 = b2.execute(&mut arch2, &mut mem);
        assert_eq!(run2.committed, 2);
        assert_eq!(arch2.pc, 0x108, "not taken falls through past the branch at 0x104");
    }

    #[test]
    fn trap_mid_block_leaves_pc_at_the_trapping_instruction() {
        let mut mem = TestMem::new(0x1000);
        program(
            &mut mem,
            0x100,
            &[
                addq_lit(31, 3, 1),
                // ldq from r31+1: misaligned → trap
                Instr::Mem { op: MemOp::Ldq, ra: r(2), rb: r(31), disp: 1 },
                addq_lit(1, 1, 3),
            ],
        );
        let b = translate(0x100, |a| mem.word(a)).expect("translates");
        let mut arch = ArchState { pc: 0x100, ..ArchState::default() };
        let run = b.execute(&mut arch, &mut mem);
        assert!(matches!(run.trap, Some(Trap::MisalignedAccess { .. })));
        assert_eq!((run.committed, run.started), (1, 2));
        assert_eq!(arch.pc, 0x104, "pc stays at the trapping instruction");
        assert_eq!(arch.regs.read_int(r(3)), 0, "nothing past the trap ran");
        // The trapping op counted fetch/decode and its execute (the address
        // compute), but not the memory event (the read never succeeded) and
        // not a commit.
        assert_eq!(run.events, [2, 2, 2, 0, 1]);
    }

    #[test]
    fn store_into_own_range_stops_the_block_after_committing() {
        let mut mem = TestMem::new(0x1000);
        program(
            &mut mem,
            0x100,
            &[
                // r1 = 0x104 (address of the next instruction)
                Instr::Lda { ra: r(1), rb: r(31), disp: 0x104 },
                // patch the *next* word: stl r31 -> [r1]
                Instr::Mem { op: MemOp::Stl, ra: r(31), rb: r(1), disp: 0 },
                addq_lit(31, 9, 2),
            ],
        );
        let b = translate(0x100, |a| mem.word(a)).expect("translates");
        assert_eq!(b.len(), 3);
        let mut arch = ArchState { pc: 0x100, ..ArchState::default() };
        let run = b.execute(&mut arch, &mut mem);
        assert_eq!(run.trap, None);
        assert_eq!(run.committed, 2, "block stops after the self-store commits");
        assert_eq!(arch.pc, 0x108, "resumes at the patched word");
        assert_eq!(arch.regs.read_int(r(2)), 0, "the stale micro-op never ran");
    }

    #[test]
    fn cmov_counts_execute_only_when_it_moves() {
        let mut mem = TestMem::new(0x1000);
        program(
            &mut mem,
            0x100,
            &[Instr::IntOp { func: IntFunc::Cmoveq, ra: r(1), rb: Operand::Lit(7), rc: r(2) }],
        );
        let b = translate(0x100, |a| mem.word(a)).expect("translates");
        // r1 == 0: moves.
        let mut arch = ArchState { pc: 0x100, ..ArchState::default() };
        let run = b.execute(&mut arch, &mut mem);
        assert_eq!((arch.regs.read_int(r(2)), run.events[2]), (7, 1));
        // r1 != 0: no move, no execute event (matches the hook path, which
        // only calls on_execute_result for a performed move).
        let mut arch2 = ArchState { pc: 0x100, ..ArchState::default() };
        arch2.regs.write_int(r(1), 5);
        let run2 = b.execute(&mut arch2, &mut mem);
        assert_eq!((arch2.regs.read_int(r(2)), run2.events[2]), (0, 0));
    }

    #[test]
    fn cache_hits_installs_and_span_fast_path() {
        let mut mem = TestMem::new(0x1000);
        program(&mut mem, 0x100, &[addq_lit(31, 1, 1), Instr::Br { ra: r(31), disp: 0 }]);
        let mut cache = SuperblockCache::new(true);
        assert!(cache.lookup(0x100).is_none());
        let b = translate(0x100, |a| mem.word(a)).expect("translates");
        cache.install(b);
        let got = cache.lookup(0x100).expect("hit");
        assert_eq!(got.len(), 2);
        let s = cache.stats();
        assert_eq!((s.blocks_built, s.hits, s.misses), (1, 1, 1));
        // A store far outside the span leaves the block resident…
        cache.invalidate_range(0x800, 8);
        assert!(cache.lookup(0x100).is_some());
        // …an overlapping store drops it.
        cache.invalidate_range(0x104, 4);
        assert!(cache.lookup(0x100).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn clear_and_disable_drop_blocks_and_counters() {
        let mut mem = TestMem::new(0x1000);
        program(&mut mem, 0x100, &[addq_lit(31, 1, 1)]);
        let mut cache = SuperblockCache::new(true);
        cache.install(translate(0x100, |a| mem.word(a)).expect("translates"));
        cache.lookup(0x100);
        cache.clear();
        assert!(cache.lookup(0x100).is_none());
        // clear resets counters too (the lookup above re-counted one miss).
        assert_eq!(cache.stats().misses, 1);
        let mut off = SuperblockCache::new(false);
        let handle = off.install(translate(0x100, |a| mem.word(a)).expect("translates"));
        assert_eq!(handle.len(), 1, "install still returns a runnable handle");
        assert!(off.lookup(0x100).is_none());
        assert_eq!(off.stats(), SuperblockStats::default(), "disabled cache never counts");
    }
}
