//! Guest-visible traps.
//!
//! Traps are the architectural mechanism by which injected faults become the
//! paper's *Crashed* outcome class: corrupted opcodes decode to illegal
//! instructions, corrupted addresses land outside mapped memory or lose
//! their alignment, and runaway control flow is caught by the watchdog.

use std::fmt;

/// A fatal guest trap. Any trap terminates the affected application run and
/// the experiment is classified as `Crashed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// The fetched word did not decode to an implemented instruction.
    IllegalInstruction {
        /// The offending instruction word.
        word: u32,
        /// PC of the fetch.
        pc: u64,
    },
    /// A load/store or instruction fetch touched unmapped physical memory.
    UnmappedAccess {
        /// The faulting address.
        addr: u64,
        /// PC of the access.
        pc: u64,
    },
    /// A naturally-aligned access requirement was violated.
    MisalignedAccess {
        /// The faulting address.
        addr: u64,
        /// PC of the access.
        pc: u64,
    },
    /// An unknown PAL call number was executed.
    IllegalPalCall {
        /// The 26-bit PAL number.
        number: u32,
        /// PC of the call.
        pc: u64,
    },
    /// The run exceeded its tick budget (hung or runaway execution).
    WatchdogTimeout,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { word, pc } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            Trap::UnmappedAccess { addr, pc } => {
                write!(f, "unmapped access to {addr:#x} at pc {pc:#x}")
            }
            Trap::MisalignedAccess { addr, pc } => {
                write!(f, "misaligned access to {addr:#x} at pc {pc:#x}")
            }
            Trap::IllegalPalCall { number, pc } => {
                write!(f, "illegal PAL call {number:#x} at pc {pc:#x}")
            }
            Trap::WatchdogTimeout => write!(f, "watchdog timeout"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traps_display_diagnostics() {
        let t = Trap::IllegalInstruction { word: 0xdeadbeef, pc: 0x1000 };
        assert_eq!(t.to_string(), "illegal instruction 0xdeadbeef at pc 0x1000");
        assert!(Trap::WatchdogTimeout.to_string().contains("watchdog"));
    }
}
