//! Guest-visible traps.
//!
//! Traps are the architectural mechanism by which injected faults become the
//! paper's *Crashed* outcome class: corrupted opcodes decode to illegal
//! instructions, corrupted addresses land outside mapped memory or lose
//! their alignment, and runaway control flow is caught by the watchdog.

use std::fmt;

/// A fatal guest trap. Any trap terminates the affected application run and
/// the experiment is classified as `Crashed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// The fetched word did not decode to an implemented instruction.
    IllegalInstruction {
        /// The offending instruction word.
        word: u32,
        /// PC of the fetch.
        pc: u64,
    },
    /// A load/store or instruction fetch touched unmapped physical memory.
    UnmappedAccess {
        /// The faulting address.
        addr: u64,
        /// PC of the access.
        pc: u64,
    },
    /// A naturally-aligned access requirement was violated.
    MisalignedAccess {
        /// The faulting address.
        addr: u64,
        /// PC of the access.
        pc: u64,
    },
    /// An unknown PAL call number was executed.
    IllegalPalCall {
        /// The 26-bit PAL number.
        number: u32,
        /// PC of the call.
        pc: u64,
    },
    /// The run exceeded its tick budget (hung or runaway execution).
    WatchdogTimeout,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { word, pc } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            Trap::UnmappedAccess { addr, pc } => {
                write!(f, "unmapped access to {addr:#x} at pc {pc:#x}")
            }
            Trap::MisalignedAccess { addr, pc } => {
                write!(f, "misaligned access to {addr:#x} at pc {pc:#x}")
            }
            Trap::IllegalPalCall { number, pc } => {
                write!(f, "illegal PAL call {number:#x} at pc {pc:#x}")
            }
            Trap::WatchdogTimeout => write!(f, "watchdog timeout"),
        }
    }
}

impl std::error::Error for Trap {}

/// A violated *simulator* invariant — a bug in the tool, never a guest
/// outcome.
///
/// The containment contract distinguishes two failure planes:
///
/// * guest-reachable corruption (registers, fetched words, decode
///   selections, execute results, the PC, memory transactions) must
///   terminate as a [`Trap`] and be tabulated in the paper's outcome
///   classes;
/// * a broken *internal* invariant (a renamed producer missing from the
///   ROB, an undecoded dispatched entry, …) is a simulator defect and must
///   surface as a `SimError` so campaigns can count it as `Infrastructure`
///   instead of silently polluting the `Crashed` class.
///
/// All fields are `'static`/scalar so the type stays `Copy` like [`Trap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimError {
    /// The subsystem whose invariant broke (e.g. `"o3"`).
    pub component: &'static str,
    /// The invariant that was violated, stated positively.
    pub invariant: &'static str,
    /// Architectural PC at the point of detection (0 when unknown).
    pub pc: u64,
}

impl SimError {
    /// A new invariant-violation report.
    pub fn new(component: &'static str, invariant: &'static str, pc: u64) -> SimError {
        SimError { component, invariant, pc }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulator invariant violated in {}: {} (pc {:#x})",
            self.component, self.invariant, self.pc
        )
    }
}

impl std::error::Error for SimError {}

/// Why a CPU step could not complete: a guest [`Trap`] (an architectural
/// outcome) or a [`SimError`] (a tool bug). CPU models return this so the
/// two planes never blur; the machine maps each to its own `RunExit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecError {
    /// A fatal guest trap (the paper's *Crashed* class).
    Trap(Trap),
    /// A violated simulator invariant (campaign *Infrastructure*).
    Sim(SimError),
}

impl From<Trap> for ExecError {
    fn from(t: Trap) -> ExecError {
        ExecError::Trap(t)
    }
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> ExecError {
        ExecError::Sim(e)
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Trap(t) => t.fmt(f),
            ExecError::Sim(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traps_display_diagnostics() {
        let t = Trap::IllegalInstruction { word: 0xdeadbeef, pc: 0x1000 };
        assert_eq!(t.to_string(), "illegal instruction 0xdeadbeef at pc 0x1000");
        assert!(Trap::WatchdogTimeout.to_string().contains("watchdog"));
    }

    #[test]
    fn sim_errors_stay_distinguishable_from_traps() {
        let e = SimError::new("o3", "renamed producer present in ROB", 0x2000);
        assert!(e.to_string().contains("simulator invariant"));
        let from_trap: ExecError = Trap::WatchdogTimeout.into();
        let from_sim: ExecError = e.into();
        assert!(matches!(from_trap, ExecError::Trap(_)));
        assert!(matches!(from_sim, ExecError::Sim(s) if s == e));
        assert!(from_sim.to_string().contains("o3"));
    }
}
