//! Raw instruction words and the four Alpha instruction formats (Table I).
//!
//! The fault engine operates on [`RawInstr`] when injecting into the fetch
//! and decode stages: a fetched-instruction fault may flip *any* of the 32
//! bits, while a decode-stage "register selection" fault is restricted to the
//! `Ra`/`Rb`/`Rc` selector fields. Field extraction and replacement helpers
//! here keep those manipulations in one place.

use std::fmt;

/// The four Alpha instruction formats from Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `opcode[31:26] | number[25:0]`
    PalCode,
    /// `opcode[31:26] | Ra[25:21] | displacement[20:0]`
    Branch,
    /// `opcode[31:26] | Ra[25:21] | Rb[20:16] | displacement[15:0]`
    Memory,
    /// `opcode[31:26] | Ra[25:21] | Rb[20:16] | lit[15:13] | function[12:5] | Rc[4:0]`
    Operate,
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Format::PalCode => write!(f, "PALcode"),
            Format::Branch => write!(f, "Branch"),
            Format::Memory => write!(f, "Memory"),
            Format::Operate => write!(f, "Operate"),
        }
    }
}

/// A named bit field within an instruction word, `[hi:lo]` inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field {
    /// Field name as printed in Table I (e.g. `"Ra"`, `"displacement"`).
    pub name: &'static str,
    /// Most significant bit, inclusive.
    pub hi: u8,
    /// Least significant bit, inclusive.
    pub lo: u8,
}

impl Field {
    /// Width of the field in bits.
    pub fn width(self) -> u8 {
        self.hi - self.lo + 1
    }

    /// Whether bit position `bit` (0 = LSB of the word) lies in this field.
    pub fn contains_bit(self, bit: u8) -> bool {
        bit >= self.lo && bit <= self.hi
    }
}

/// The `opcode` field common to every format.
pub const OPCODE: Field = Field { name: "opcode", hi: 31, lo: 26 };
/// PALcode `number` field.
pub const PAL_NUMBER: Field = Field { name: "number", hi: 25, lo: 0 };
/// `Ra` register selector.
pub const RA: Field = Field { name: "Ra", hi: 25, lo: 21 };
/// `Rb` register selector.
pub const RB: Field = Field { name: "Rb", hi: 20, lo: 16 };
/// `Rc` register selector (Operate format).
pub const RC: Field = Field { name: "Rc", hi: 4, lo: 0 };
/// Branch-format 21-bit displacement.
pub const BDISP: Field = Field { name: "displacement", hi: 20, lo: 0 };
/// Memory-format 16-bit displacement.
pub const MDISP: Field = Field { name: "displacement", hi: 15, lo: 0 };
/// Operate-format literal/flag bit: bit 12 selects literal mode, in which
/// bits 20:13 (overlapping `Rb`) hold an 8-bit literal (Alpha's layout).
pub const LITFLAG: Field = Field { name: "lit", hi: 12, lo: 12 };
/// Operate-format 8-bit literal value (an overlay of `Rb`+`SBZ`, valid when
/// `LITFLAG` is set).
pub const LITERAL: Field = Field { name: "literal", hi: 20, lo: 13 };
/// Operate-format should-be-zero bits (register mode).
pub const SBZ: Field = Field { name: "SBZ", hi: 15, lo: 13 };
/// Operate-format 7-bit function code.
pub const FUNCTION: Field = Field { name: "function", hi: 11, lo: 5 };

impl Format {
    /// The fields of this format in most-significant-first order, exactly as
    /// Table I lists them.
    pub fn fields(self) -> &'static [Field] {
        match self {
            Format::PalCode => &[OPCODE, PAL_NUMBER],
            Format::Branch => &[OPCODE, RA, BDISP],
            Format::Memory => &[OPCODE, RA, RB, MDISP],
            Format::Operate => &[OPCODE, RA, RB, SBZ, LITFLAG, FUNCTION, RC],
        }
    }

    /// The field of this format containing bit `bit`, if any.
    pub fn field_of_bit(self, bit: u8) -> Option<Field> {
        self.fields().iter().copied().find(|f| f.contains_bit(bit))
    }

    /// The register-selector fields of this format (targets for decode-stage
    /// "selection of read/write registers" faults in the paper's model).
    pub fn reg_selector_fields(self) -> &'static [Field] {
        match self {
            Format::PalCode => &[],
            Format::Branch => &[RA],
            Format::Memory => &[RA, RB],
            Format::Operate => &[RA, RB, RC],
        }
    }
}

/// A raw, undecoded 32-bit instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawInstr(pub u32);

impl RawInstr {
    /// Extracts a bit field from the word.
    pub fn field(self, f: Field) -> u32 {
        (self.0 >> f.lo) & ((1u32 << f.width()) - 1)
    }

    /// Returns a copy of the word with field `f` replaced by `value`
    /// (truncated to the field width).
    pub fn with_field(self, f: Field, value: u32) -> RawInstr {
        let mask = ((1u32 << f.width()) - 1) << f.lo;
        RawInstr((self.0 & !mask) | ((value << f.lo) & mask))
    }

    /// The 6-bit major opcode.
    pub fn opcode(self) -> u32 {
        self.field(OPCODE)
    }

    /// The `Ra` selector bits.
    pub fn ra(self) -> u32 {
        self.field(RA)
    }

    /// The `Rb` selector bits.
    pub fn rb(self) -> u32 {
        self.field(RB)
    }

    /// The `Rc` selector bits.
    pub fn rc(self) -> u32 {
        self.field(RC)
    }

    /// Sign-extended 16-bit memory displacement.
    pub fn mdisp(self) -> i64 {
        self.field(MDISP) as u16 as i16 as i64
    }

    /// Sign-extended 21-bit branch displacement (in instruction words).
    pub fn bdisp(self) -> i64 {
        let v = self.field(BDISP);
        ((v << 11) as i32 >> 11) as i64
    }

    /// The 26-bit PALcode number.
    pub fn palnum(self) -> u32 {
        self.field(PAL_NUMBER)
    }

    /// The operate-format 7-bit function code.
    pub fn function(self) -> u32 {
        self.field(FUNCTION)
    }

    /// Whether the operate-format literal flag (bit 12) is set.
    pub fn lit_flag(self) -> bool {
        self.field(LITFLAG) != 0
    }

    /// The operate-format 8-bit literal.
    pub fn literal(self) -> u32 {
        self.field(LITERAL)
    }

    /// Flips bit `bit` (0–31) of the word. Used by fetch-stage fault
    /// injection.
    pub fn flip_bit(self, bit: u8) -> RawInstr {
        RawInstr(self.0 ^ (1u32 << (bit & 31)))
    }
}

impl fmt::Display for RawInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for RawInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for RawInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u32> for RawInstr {
    fn from(w: u32) -> RawInstr {
        RawInstr(w)
    }
}

impl From<RawInstr> for u32 {
    fn from(r: RawInstr) -> u32 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_cover_all_32_bits_without_overlap() {
        for format in [Format::PalCode, Format::Branch, Format::Memory, Format::Operate] {
            let mut seen = [false; 32];
            for f in format.fields() {
                for bit in f.lo..=f.hi {
                    assert!(!seen[bit as usize], "{format}: bit {bit} covered twice");
                    seen[bit as usize] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "{format}: bits not fully covered");
        }
    }

    #[test]
    fn field_extract_and_replace_roundtrip() {
        let w = RawInstr(0xffff_ffff);
        let w2 = w.with_field(RA, 0);
        assert_eq!(w2.ra(), 0);
        assert_eq!(w2.with_field(RA, 31).0, w.0);
    }

    #[test]
    fn mdisp_sign_extends() {
        let w = RawInstr(0).with_field(MDISP, 0xffff);
        assert_eq!(w.mdisp(), -1);
        let w = RawInstr(0).with_field(MDISP, 0x7fff);
        assert_eq!(w.mdisp(), 0x7fff);
    }

    #[test]
    fn bdisp_sign_extends_21_bits() {
        let w = RawInstr(0).with_field(BDISP, 0x1f_ffff);
        assert_eq!(w.bdisp(), -1);
        let w = RawInstr(0).with_field(BDISP, 0x0f_ffff);
        assert_eq!(w.bdisp(), 0x0f_ffff);
    }

    #[test]
    fn flip_bit_is_involutive() {
        let w = RawInstr(0x1234_5678);
        for bit in 0..32 {
            assert_eq!(w.flip_bit(bit).flip_bit(bit), w);
            assert_ne!(w.flip_bit(bit), w);
        }
    }

    #[test]
    fn field_of_bit_names_table1_fields() {
        assert_eq!(Format::Memory.field_of_bit(31).unwrap().name, "opcode");
        assert_eq!(Format::Memory.field_of_bit(22).unwrap().name, "Ra");
        assert_eq!(Format::Memory.field_of_bit(17).unwrap().name, "Rb");
        assert_eq!(Format::Memory.field_of_bit(3).unwrap().name, "displacement");
        assert_eq!(Format::Operate.field_of_bit(7).unwrap().name, "function");
        assert_eq!(Format::Operate.field_of_bit(0).unwrap().name, "Rc");
    }
}
