//! Predecoded-instruction cache.
//!
//! gem5 keeps a per-CPU cache of decoded instructions so the functional hot
//! loop does not re-crack the raw 32-bit word on every step; GemFI's
//! fast-forward methodology (Sec. III-D) makes that loop the dominant cost
//! of a campaign, so this reproduction does the same. The cache is
//! **derived state** and must stay architecturally invisible:
//!
//! * stores to a cached word invalidate the entry (self-modifying code,
//!   including the kernel boot stub written at runtime);
//! * a fetch- or decode-stage fault that changes the raw word bypasses the
//!   cache entirely — the corrupted word is decoded fresh and the corrupted
//!   decode is never installed;
//! * the cache is dropped on checkpoint save/restore and CPU-model switch,
//!   and never enters the serialized checkpoint image.
//!
//! Entries remember the *raw* word alongside the decoded [`Instr`]: the
//! injection hooks operate on raw bits, so the fast path re-runs the hooks
//! on the remembered word and only uses the cached decode when the hooks
//! left it untouched.

use crate::instr::Instr;

/// Default number of direct-mapped entries (power of two). At one entry per
/// instruction word this spans 32 KiB of text — larger than any guest in the
/// workload suite, so steady-state hit rates are effectively 100 %.
pub const DEFAULT_PREDECODE_ENTRIES: usize = 8192;

/// Hit/miss/invalidation counters for the predecode cache, surfaced through
/// `MemStats`/`SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Fetches served from a cached decode.
    pub hits: u64,
    /// Fetches that had to decode (and installed the result).
    pub misses: u64,
    /// Entries dropped because a store overlapped their word.
    pub invalidations: u64,
}

impl PredecodeStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; zero when there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    pc: u64,
    raw: u32,
    instr: Instr,
}

/// A direct-mapped cache of decoded instructions keyed by physical
/// instruction address.
#[derive(Debug, Clone, PartialEq)]
pub struct PredecodeCache {
    enabled: bool,
    mask: u64,
    entries: Vec<Option<Entry>>,
    stats: PredecodeStats,
}

impl PredecodeCache {
    /// A cache with [`DEFAULT_PREDECODE_ENTRIES`] slots.
    pub fn new(enabled: bool) -> PredecodeCache {
        PredecodeCache::with_entries(DEFAULT_PREDECODE_ENTRIES, enabled)
    }

    /// A cache with `entries` slots (rounded up to a power of two).
    pub fn with_entries(entries: usize, enabled: bool) -> PredecodeCache {
        let entries = entries.next_power_of_two().max(1);
        PredecodeCache {
            enabled,
            mask: (entries - 1) as u64,
            entries: vec![None; entries],
            stats: PredecodeStats::default(),
        }
    }

    /// Whether lookups and installs are live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Fast-path lookup: the raw word and decode cached for `pc`, bumping
    /// the hit/miss counters. Returns `None` when disabled (uncounted) or on
    /// a miss.
    #[inline]
    pub fn lookup(&mut self, pc: u64) -> Option<(u32, Instr)> {
        if !self.enabled {
            return None;
        }
        let idx = self.index(pc);
        match self.entries[idx] {
            Some(e) if e.pc == pc => {
                self.stats.hits += 1;
                Some((e.raw, e.instr))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Untimed, uncounted lookup for speculative peeks (branch predictors,
    /// interlock checks) that must not perturb the statistics surface.
    #[inline]
    pub fn peek(&self, pc: u64) -> Option<Instr> {
        if !self.enabled {
            return None;
        }
        match self.entries[self.index(pc)] {
            Some(e) if e.pc == pc => Some(e.instr),
            _ => None,
        }
    }

    /// Installs a decode for `pc`. `raw` must be the uncorrupted word as
    /// read from memory — callers are responsible for never installing a
    /// fault-corrupted decode.
    #[inline]
    pub fn install(&mut self, pc: u64, raw: u32, instr: Instr) {
        if !self.enabled {
            return;
        }
        let idx = self.index(pc);
        self.entries[idx] = Some(Entry { pc, raw, instr });
    }

    /// Drops every entry whose word overlaps `[addr, addr + len)` — called
    /// on every store so self-modifying code always refetches.
    pub fn invalidate_range(&mut self, addr: u64, len: u64) {
        if !self.enabled || len == 0 {
            return;
        }
        let bytes = (self.entries.len() as u64) * 4;
        if len >= bytes {
            // A bulk write larger than the cache span: wipe wholesale.
            for slot in &mut self.entries {
                if slot.take().is_some() {
                    self.stats.invalidations += 1;
                }
            }
            return;
        }
        let first = addr & !3;
        let mut word = first;
        while word < addr + len {
            let idx = self.index(word);
            if matches!(self.entries[idx], Some(e) if e.pc == word) {
                self.entries[idx] = None;
                self.stats.invalidations += 1;
            }
            word += 4;
        }
    }

    /// Drops every entry *and* the counters: the derived-state reset used on
    /// checkpoint capture/restore and CPU-model switch.
    pub fn clear(&mut self) {
        for slot in &mut self.entries {
            *slot = None;
        }
        self.stats = PredecodeStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::RawInstr;
    use crate::instr::{decode, encode, Instr};
    use crate::opcode::IntFunc;
    use crate::regs::IntReg;
    use crate::Operand;

    fn addq() -> Instr {
        Instr::IntOp {
            func: IntFunc::Addq,
            ra: IntReg::new(1).unwrap(),
            rb: Operand::Reg(IntReg::new(2).unwrap()),
            rc: IntReg::new(3).unwrap(),
        }
    }

    #[test]
    fn install_then_lookup_hits() {
        let mut c = PredecodeCache::with_entries(16, true);
        let i = addq();
        let raw = encode(&i).0;
        assert!(c.lookup(0x1000).is_none());
        c.install(0x1000, raw, i);
        assert_eq!(c.lookup(0x1000), Some((raw, i)));
        assert_eq!(c.stats(), PredecodeStats { hits: 1, misses: 1, invalidations: 0 });
    }

    #[test]
    fn aliasing_pc_evicts_and_misses() {
        let mut c = PredecodeCache::with_entries(16, true);
        let i = addq();
        let raw = encode(&i).0;
        c.install(0x1000, raw, i);
        // 16 entries × 4 bytes: +64 aliases to the same slot.
        c.install(0x1000 + 64, raw, i);
        assert!(c.lookup(0x1000).is_none(), "aliased install must evict");
        assert_eq!(c.lookup(0x1000 + 64), Some((raw, i)));
    }

    #[test]
    fn store_invalidates_overlapping_words() {
        let mut c = PredecodeCache::with_entries(16, true);
        let i = addq();
        let raw = encode(&i).0;
        c.install(0x1000, raw, i);
        c.install(0x1004, raw, i);
        c.install(0x1008, raw, i);
        // An 8-byte store over 0x1004 kills words 0x1004 and 0x1008 but
        // leaves 0x1000 cached.
        c.invalidate_range(0x1004, 8);
        assert!(c.peek(0x1004).is_none());
        assert!(c.peek(0x1008).is_none());
        assert!(c.peek(0x1000).is_some());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn unaligned_store_invalidates_the_containing_word() {
        let mut c = PredecodeCache::with_entries(16, true);
        let i = addq();
        c.install(0x1000, encode(&i).0, i);
        c.invalidate_range(0x1003, 1);
        assert!(c.peek(0x1000).is_none());
    }

    #[test]
    fn bulk_write_wipes_everything() {
        let mut c = PredecodeCache::with_entries(16, true);
        let i = addq();
        c.install(0x1000, encode(&i).0, i);
        c.install(0x2004, encode(&i).0, i);
        c.invalidate_range(0, 1 << 20);
        assert!(c.peek(0x1000).is_none());
        assert!(c.peek(0x2004).is_none());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn disabled_cache_never_caches_or_counts() {
        let mut c = PredecodeCache::with_entries(16, false);
        let i = addq();
        c.install(0x1000, encode(&i).0, i);
        assert!(c.lookup(0x1000).is_none());
        assert!(c.peek(0x1000).is_none());
        assert_eq!(c.stats(), PredecodeStats::default());
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let mut c = PredecodeCache::with_entries(16, true);
        let i = addq();
        c.install(0x1000, encode(&i).0, i);
        c.lookup(0x1000);
        c.clear();
        assert!(c.peek(0x1000).is_none());
        assert_eq!(c.stats(), PredecodeStats::default());
    }

    #[test]
    fn cached_raw_word_round_trips_through_decode() {
        let mut c = PredecodeCache::new(true);
        let i = addq();
        let raw = encode(&i).0;
        c.install(0x3000, raw, i);
        let (cached_raw, cached) = c.lookup(0x3000).unwrap();
        assert_eq!(decode(RawInstr(cached_raw)).unwrap(), cached);
    }

    #[test]
    fn hit_ratio_is_well_defined() {
        assert_eq!(PredecodeStats::default().hit_ratio(), 0.0);
        let s = PredecodeStats { hits: 3, misses: 1, invalidations: 0 };
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(s.accesses(), 4);
    }
}
