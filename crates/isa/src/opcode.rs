//! Major opcodes, operate-format function codes, and PAL call numbers.
//!
//! Opcode assignments follow the real Alpha AXP architecture for every
//! instruction class the subset implements (LDA = 0x08, LDQ = 0x29,
//! BEQ = 0x39, integer operates under 0x10–0x13, …). The two GemFI
//! pseudo-instructions occupy reserved Alpha opcode space (`OPC01`/`OPC02`),
//! mirroring how GemFI extends the ISA with `m5op`-style pseudo-ops.

use std::fmt;

/// Major (6-bit) opcodes implemented by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// `CALL_PAL` — trap into the PAL/kernel layer.
    CallPal = 0x00,
    /// GemFI pseudo-op: `fi_activate_inst(id)`; the id is the PAL-format
    /// 26-bit number field.
    FiActivate = 0x01,
    /// GemFI pseudo-op: `fi_read_init_all()` — checkpoint request.
    FiReadInit = 0x02,
    /// Load address: `Ra = Rb + disp`.
    Lda = 0x08,
    /// Load address high: `Ra = Rb + (disp << 16)`.
    Ldah = 0x09,
    /// Integer arithmetic operate group (ADDQ, SUBQ, CMP…).
    IntArith = 0x10,
    /// Integer logical operate group (AND, BIS, XOR, CMOV…).
    IntLogic = 0x11,
    /// Integer shift operate group (SLL, SRL, SRA).
    IntShift = 0x12,
    /// Integer multiply operate group (MULQ, UMULH).
    IntMul = 0x13,
    /// Floating-point operate group (ADDT, MULT, CVT…).
    FltOp = 0x16,
    /// Memory-format jump group (JMP/JSR/RET selected by disp bits 15:14).
    Jmp = 0x1a,
    /// Load double (IEEE T-float) into an FP register.
    Ldt = 0x23,
    /// Store double from an FP register.
    Stt = 0x27,
    /// Load sign-extended 32-bit.
    Ldl = 0x28,
    /// Load 64-bit.
    Ldq = 0x29,
    /// Store low 32 bits.
    Stl = 0x2c,
    /// Store 64-bit.
    Stq = 0x2d,
    /// Unconditional branch, writes return address to `Ra`.
    Br = 0x30,
    /// FP branch if `Ra == 0.0`.
    Fbeq = 0x31,
    /// FP branch if `Ra < 0.0`.
    Fblt = 0x32,
    /// FP branch if `Ra <= 0.0`.
    Fble = 0x33,
    /// Branch to subroutine (same encoding semantics as BR; pushes RAS).
    Bsr = 0x34,
    /// FP branch if `Ra != 0.0`.
    Fbne = 0x35,
    /// FP branch if `Ra >= 0.0`.
    Fbge = 0x36,
    /// FP branch if `Ra > 0.0`.
    Fbgt = 0x37,
    /// Branch if low bit of `Ra` is clear.
    Blbc = 0x38,
    /// Branch if `Ra == 0`.
    Beq = 0x39,
    /// Branch if `Ra < 0` (signed).
    Blt = 0x3a,
    /// Branch if `Ra <= 0` (signed).
    Ble = 0x3b,
    /// Branch if low bit of `Ra` is set.
    Blbs = 0x3c,
    /// Branch if `Ra != 0`.
    Bne = 0x3d,
    /// Branch if `Ra >= 0` (signed).
    Bge = 0x3e,
    /// Branch if `Ra > 0` (signed).
    Bgt = 0x3f,
}

impl Opcode {
    /// Decodes a 6-bit major opcode, returning `None` for unimplemented
    /// encodings (which the CPU raises as illegal-instruction traps — the
    /// paper's observed outcome for opcode-field corruption).
    pub fn from_bits(bits: u32) -> Option<Opcode> {
        use Opcode::*;
        Some(match bits & 0x3f {
            0x00 => CallPal,
            0x01 => FiActivate,
            0x02 => FiReadInit,
            0x08 => Lda,
            0x09 => Ldah,
            0x10 => IntArith,
            0x11 => IntLogic,
            0x12 => IntShift,
            0x13 => IntMul,
            0x16 => FltOp,
            0x1a => Jmp,
            0x23 => Ldt,
            0x27 => Stt,
            0x28 => Ldl,
            0x29 => Ldq,
            0x2c => Stl,
            0x2d => Stq,
            0x30 => Br,
            0x31 => Fbeq,
            0x32 => Fblt,
            0x33 => Fble,
            0x34 => Bsr,
            0x35 => Fbne,
            0x36 => Fbge,
            0x37 => Fbgt,
            0x38 => Blbc,
            0x39 => Beq,
            0x3a => Blt,
            0x3b => Ble,
            0x3c => Blbs,
            0x3d => Bne,
            0x3e => Bge,
            0x3f => Bgt,
            _ => return None,
        })
    }

    /// The instruction format of this opcode.
    pub fn format(self) -> super::Format {
        use Opcode::*;
        match self {
            CallPal | FiActivate | FiReadInit => super::Format::PalCode,
            Lda | Ldah | Jmp | Ldt | Stt | Ldl | Ldq | Stl | Stq => super::Format::Memory,
            IntArith | IntLogic | IntShift | IntMul | FltOp => super::Format::Operate,
            Br | Bsr | Fbeq | Fblt | Fble | Fbne | Fbge | Fbgt | Blbc | Beq | Blt | Ble | Blbs
            | Bne | Bge | Bgt => super::Format::Branch,
        }
    }
}

/// Integer operate-group function codes (real Alpha values).
///
/// The pair `(major opcode, function)` selects the operation; unknown pairs
/// decode to illegal instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntFunc {
    // 0x10 group
    /// 32-bit add (sign-extended result).
    Addl,
    /// 64-bit add.
    Addq,
    /// 32-bit subtract (sign-extended result).
    Subl,
    /// 64-bit subtract.
    Subq,
    /// Compare equal.
    Cmpeq,
    /// Compare signed less-than.
    Cmplt,
    /// Compare signed less-or-equal.
    Cmple,
    /// Compare unsigned less-than.
    Cmpult,
    /// Compare unsigned less-or-equal.
    Cmpule,
    /// Scaled-by-8 add (`Ra*8 + Rb`), Alpha's S8ADDQ.
    S8addq,
    // 0x11 group
    /// Bitwise AND.
    And,
    /// AND with complement.
    Bic,
    /// Bitwise OR (Alpha's BIS).
    Bis,
    /// OR with complement.
    Ornot,
    /// Bitwise XOR.
    Xor,
    /// XOR with complement (equivalence).
    Eqv,
    /// Conditional move if `Ra == 0`.
    Cmoveq,
    /// Conditional move if `Ra != 0`.
    Cmovne,
    /// Conditional move if `Ra < 0`.
    Cmovlt,
    /// Conditional move if `Ra >= 0`.
    Cmovge,
    /// Conditional move if `Ra <= 0`.
    Cmovle,
    /// Conditional move if `Ra > 0`.
    Cmovgt,
    // 0x12 group
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    // 0x13 group
    /// 32-bit multiply (sign-extended result).
    Mull,
    /// 64-bit multiply (low half).
    Mulq,
    /// Unsigned multiply, high 64 bits.
    Umulh,
}

impl IntFunc {
    /// The `(opcode, function)` encoding of this operation.
    pub fn encoding(self) -> (Opcode, u32) {
        use IntFunc::*;
        match self {
            Addl => (Opcode::IntArith, 0x00),
            Addq => (Opcode::IntArith, 0x20),
            Subl => (Opcode::IntArith, 0x09),
            Subq => (Opcode::IntArith, 0x29),
            Cmpeq => (Opcode::IntArith, 0x2d),
            Cmplt => (Opcode::IntArith, 0x4d),
            Cmple => (Opcode::IntArith, 0x6d),
            Cmpult => (Opcode::IntArith, 0x1d),
            Cmpule => (Opcode::IntArith, 0x3d),
            S8addq => (Opcode::IntArith, 0x32),
            And => (Opcode::IntLogic, 0x00),
            Bic => (Opcode::IntLogic, 0x08),
            Bis => (Opcode::IntLogic, 0x20),
            Ornot => (Opcode::IntLogic, 0x28),
            Xor => (Opcode::IntLogic, 0x40),
            Eqv => (Opcode::IntLogic, 0x48),
            Cmoveq => (Opcode::IntLogic, 0x24),
            Cmovne => (Opcode::IntLogic, 0x26),
            Cmovlt => (Opcode::IntLogic, 0x44),
            Cmovge => (Opcode::IntLogic, 0x46),
            Cmovle => (Opcode::IntLogic, 0x64),
            Cmovgt => (Opcode::IntLogic, 0x66),
            Sll => (Opcode::IntShift, 0x39),
            Srl => (Opcode::IntShift, 0x34),
            Sra => (Opcode::IntShift, 0x3c),
            Mull => (Opcode::IntMul, 0x00),
            Mulq => (Opcode::IntMul, 0x20),
            Umulh => (Opcode::IntMul, 0x30),
        }
    }

    /// Decodes `(opcode, function)` back to the operation.
    pub fn from_encoding(op: Opcode, func: u32) -> Option<IntFunc> {
        use IntFunc::*;
        Some(match (op, func & 0x7f) {
            (Opcode::IntArith, 0x00) => Addl,
            (Opcode::IntArith, 0x20) => Addq,
            (Opcode::IntArith, 0x09) => Subl,
            (Opcode::IntArith, 0x29) => Subq,
            (Opcode::IntArith, 0x2d) => Cmpeq,
            (Opcode::IntArith, 0x4d) => Cmplt,
            (Opcode::IntArith, 0x6d) => Cmple,
            (Opcode::IntArith, 0x1d) => Cmpult,
            (Opcode::IntArith, 0x3d) => Cmpule,
            (Opcode::IntArith, 0x32) => S8addq,
            (Opcode::IntLogic, 0x00) => And,
            (Opcode::IntLogic, 0x08) => Bic,
            (Opcode::IntLogic, 0x20) => Bis,
            (Opcode::IntLogic, 0x28) => Ornot,
            (Opcode::IntLogic, 0x40) => Xor,
            (Opcode::IntLogic, 0x48) => Eqv,
            (Opcode::IntLogic, 0x24) => Cmoveq,
            (Opcode::IntLogic, 0x26) => Cmovne,
            (Opcode::IntLogic, 0x44) => Cmovlt,
            (Opcode::IntLogic, 0x46) => Cmovge,
            (Opcode::IntLogic, 0x64) => Cmovle,
            (Opcode::IntLogic, 0x66) => Cmovgt,
            (Opcode::IntShift, 0x39) => Sll,
            (Opcode::IntShift, 0x34) => Srl,
            (Opcode::IntShift, 0x3c) => Sra,
            (Opcode::IntMul, 0x00) => Mull,
            (Opcode::IntMul, 0x20) => Mulq,
            (Opcode::IntMul, 0x30) => Umulh,
            _ => return None,
        })
    }

    /// All integer operations, for exhaustive encode/decode tests.
    pub const ALL: [IntFunc; 28] = [
        IntFunc::Addl,
        IntFunc::Addq,
        IntFunc::Subl,
        IntFunc::Subq,
        IntFunc::Cmpeq,
        IntFunc::Cmplt,
        IntFunc::Cmple,
        IntFunc::Cmpult,
        IntFunc::Cmpule,
        IntFunc::S8addq,
        IntFunc::And,
        IntFunc::Bic,
        IntFunc::Bis,
        IntFunc::Ornot,
        IntFunc::Xor,
        IntFunc::Eqv,
        IntFunc::Cmoveq,
        IntFunc::Cmovne,
        IntFunc::Cmovlt,
        IntFunc::Cmovge,
        IntFunc::Cmovle,
        IntFunc::Cmovgt,
        IntFunc::Sll,
        IntFunc::Srl,
        IntFunc::Sra,
        IntFunc::Mull,
        IntFunc::Mulq,
        IntFunc::Umulh,
    ];

    /// Lowercase mnemonic, as printed by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        use IntFunc::*;
        match self {
            Addl => "addl",
            Addq => "addq",
            Subl => "subl",
            Subq => "subq",
            Cmpeq => "cmpeq",
            Cmplt => "cmplt",
            Cmple => "cmple",
            Cmpult => "cmpult",
            Cmpule => "cmpule",
            S8addq => "s8addq",
            And => "and",
            Bic => "bic",
            Bis => "bis",
            Ornot => "ornot",
            Xor => "xor",
            Eqv => "eqv",
            Cmoveq => "cmoveq",
            Cmovne => "cmovne",
            Cmovlt => "cmovlt",
            Cmovge => "cmovge",
            Cmovle => "cmovle",
            Cmovgt => "cmovgt",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Mull => "mull",
            Mulq => "mulq",
            Umulh => "umulh",
        }
    }
}

impl fmt::Display for IntFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point operate-group function codes (opcode 0x16).
///
/// Function values are subset-local assignments within the 7-bit function
/// field; the Alpha IEEE T-float codes do not fit the generic Table I operate
/// layout the paper depicts, so the subset keeps the layout and renumbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpFunc {
    /// IEEE double add.
    Addt,
    /// IEEE double subtract.
    Subt,
    /// IEEE double multiply.
    Mult,
    /// IEEE double divide.
    Divt,
    /// IEEE double square root.
    Sqrtt,
    /// FP compare equal (result 2.0 if true, else 0.0, per Alpha).
    Cmpteq,
    /// FP compare less-than.
    Cmptlt,
    /// FP compare less-or-equal.
    Cmptle,
    /// Convert quadword (from FP reg bits) to double.
    Cvtqt,
    /// Convert double to quadword, truncating.
    Cvttq,
    /// Copy sign: `Rc = |Rb| with sign of Ra` (CPYS Fa,Fa,Fc is FP move).
    Cpys,
    /// Copy negated sign.
    Cpysn,
    /// FP conditional move if `Ra == 0.0`.
    Fcmoveq,
    /// FP conditional move if `Ra != 0.0`.
    Fcmovne,
    /// Move integer register bits into an FP register (`Rb` int → `Rc` fp).
    Itoft,
    /// Move FP register bits into an integer register (`Ra` fp → `Rc` int).
    Ftoit,
}

impl FpFunc {
    /// The 7-bit function code of this operation.
    pub fn function(self) -> u32 {
        use FpFunc::*;
        match self {
            Addt => 0x20,
            Subt => 0x21,
            Mult => 0x22,
            Divt => 0x23,
            Sqrtt => 0x24,
            Cmpteq => 0x25,
            Cmptlt => 0x26,
            Cmptle => 0x27,
            Cvtqt => 0x28,
            Cvttq => 0x29,
            Cpys => 0x2a,
            Cpysn => 0x2b,
            Fcmoveq => 0x2c,
            Fcmovne => 0x2d,
            Itoft => 0x2e,
            Ftoit => 0x2f,
        }
    }

    /// Decodes a 7-bit function code.
    pub fn from_function(func: u32) -> Option<FpFunc> {
        use FpFunc::*;
        Some(match func & 0x7f {
            0x20 => Addt,
            0x21 => Subt,
            0x22 => Mult,
            0x23 => Divt,
            0x24 => Sqrtt,
            0x25 => Cmpteq,
            0x26 => Cmptlt,
            0x27 => Cmptle,
            0x28 => Cvtqt,
            0x29 => Cvttq,
            0x2a => Cpys,
            0x2b => Cpysn,
            0x2c => Fcmoveq,
            0x2d => Fcmovne,
            0x2e => Itoft,
            0x2f => Ftoit,
            _ => return None,
        })
    }

    /// All FP operations, for exhaustive encode/decode tests.
    pub const ALL: [FpFunc; 16] = [
        FpFunc::Addt,
        FpFunc::Subt,
        FpFunc::Mult,
        FpFunc::Divt,
        FpFunc::Sqrtt,
        FpFunc::Cmpteq,
        FpFunc::Cmptlt,
        FpFunc::Cmptle,
        FpFunc::Cvtqt,
        FpFunc::Cvttq,
        FpFunc::Cpys,
        FpFunc::Cpysn,
        FpFunc::Fcmoveq,
        FpFunc::Fcmovne,
        FpFunc::Itoft,
        FpFunc::Ftoit,
    ];

    /// Lowercase mnemonic, as printed by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        use FpFunc::*;
        match self {
            Addt => "addt",
            Subt => "subt",
            Mult => "mult",
            Divt => "divt",
            Sqrtt => "sqrtt",
            Cmpteq => "cmpteq",
            Cmptlt => "cmptlt",
            Cmptle => "cmptle",
            Cvtqt => "cvtqt",
            Cvttq => "cvttq",
            Cpys => "cpys",
            Cpysn => "cpysn",
            Fcmoveq => "fcmoveq",
            Fcmovne => "fcmovne",
            Itoft => "itoft",
            Ftoit => "ftoit",
        }
    }
}

impl fmt::Display for FpFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conditions for integer conditional branches, shared between the decoder
/// and the branch-predictor update path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `Ra == 0`
    Eq,
    /// `Ra != 0`
    Ne,
    /// `Ra < 0` (signed)
    Lt,
    /// `Ra <= 0` (signed)
    Le,
    /// `Ra > 0` (signed)
    Gt,
    /// `Ra >= 0` (signed)
    Ge,
    /// Low bit of `Ra` clear.
    Lbc,
    /// Low bit of `Ra` set.
    Lbs,
}

impl BranchCond {
    /// Evaluates the condition on a register value.
    pub fn eval(self, ra: u64) -> bool {
        let s = ra as i64;
        match self {
            BranchCond::Eq => ra == 0,
            BranchCond::Ne => ra != 0,
            BranchCond::Lt => s < 0,
            BranchCond::Le => s <= 0,
            BranchCond::Gt => s > 0,
            BranchCond::Ge => s >= 0,
            BranchCond::Lbc => ra & 1 == 0,
            BranchCond::Lbs => ra & 1 == 1,
        }
    }

    /// Mnemonic suffix (`beq`, `bne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
            BranchCond::Ge => "bge",
            BranchCond::Lbc => "blbc",
            BranchCond::Lbs => "blbs",
        }
    }
}

/// Conditions for floating-point conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBranchCond {
    /// `Ra == 0.0`
    Eq,
    /// `Ra != 0.0`
    Ne,
    /// `Ra < 0.0`
    Lt,
    /// `Ra <= 0.0`
    Le,
    /// `Ra > 0.0`
    Gt,
    /// `Ra >= 0.0`
    Ge,
}

impl FpBranchCond {
    /// Evaluates the condition on FP register bits. Alpha FP branches test
    /// the sign bit and zero-ness of the bit pattern, which is what we do:
    /// NaNs compare like their bit patterns (positive NaN is "> 0").
    pub fn eval(self, bits: u64) -> bool {
        let is_zero = bits << 1 == 0; // +0.0 or -0.0
        let negative = bits >> 63 == 1;
        match self {
            FpBranchCond::Eq => is_zero,
            FpBranchCond::Ne => !is_zero,
            FpBranchCond::Lt => negative && !is_zero,
            FpBranchCond::Le => negative || is_zero,
            FpBranchCond::Gt => !negative && !is_zero,
            FpBranchCond::Ge => !negative || is_zero,
        }
    }

    /// Mnemonic (`fbeq`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpBranchCond::Eq => "fbeq",
            FpBranchCond::Ne => "fbne",
            FpBranchCond::Lt => "fblt",
            FpBranchCond::Le => "fble",
            FpBranchCond::Gt => "fbgt",
            FpBranchCond::Ge => "fbge",
        }
    }
}

/// PAL call numbers understood by the kernel substrate.
///
/// These play the role gem5 FS mode assigns to PALcode + the guest OS:
/// console I/O, process control, memory management and threading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PalFunc {
    /// Halt the machine immediately.
    Halt,
    /// Write the low byte of `R16` to the console.
    Putc,
    /// Terminate the current thread with exit code `R16`.
    Exit,
    /// Grow the heap by `R16` bytes; old break returned in `R0`.
    Sbrk,
    /// Spawn a thread: entry `R16`, stack top `R17`, argument `R18`;
    /// new thread id returned in `R0`.
    ThreadSpawn,
    /// Yield the CPU to the scheduler.
    Yield,
    /// Join thread `R16` (block until it exits).
    ThreadJoin,
    /// Current thread id returned in `R0`.
    GetTid,
    /// Append the full `R16` value to the machine's binary output channel.
    WriteWord,
    /// Current simulation tick returned in `R0`.
    ReadCycles,
}

impl PalFunc {
    /// Decodes a 26-bit PAL number.
    pub fn from_number(n: u32) -> Option<PalFunc> {
        use PalFunc::*;
        Some(match n {
            0x00 => Halt,
            0x01 => Putc,
            0x02 => Exit,
            0x03 => Sbrk,
            0x04 => ThreadSpawn,
            0x05 => Yield,
            0x06 => ThreadJoin,
            0x07 => GetTid,
            0x08 => WriteWord,
            0x09 => ReadCycles,
            _ => return None,
        })
    }

    /// The 26-bit PAL number of this call.
    pub fn number(self) -> u32 {
        use PalFunc::*;
        match self {
            Halt => 0x00,
            Putc => 0x01,
            Exit => 0x02,
            Sbrk => 0x03,
            ThreadSpawn => 0x04,
            Yield => 0x05,
            ThreadJoin => 0x06,
            GetTid => 0x07,
            WriteWord => 0x08,
            ReadCycles => 0x09,
        }
    }
}

impl fmt::Display for PalFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PalFunc::Halt => "halt",
            PalFunc::Putc => "putc",
            PalFunc::Exit => "exit",
            PalFunc::Sbrk => "sbrk",
            PalFunc::ThreadSpawn => "thread_spawn",
            PalFunc::Yield => "yield",
            PalFunc::ThreadJoin => "thread_join",
            PalFunc::GetTid => "gettid",
            PalFunc::WriteWord => "write_word",
            PalFunc::ReadCycles => "read_cycles",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrips() {
        for bits in 0..64u32 {
            if let Some(op) = Opcode::from_bits(bits) {
                assert_eq!(op as u8 as u32, bits, "{op:?}");
            }
        }
    }

    #[test]
    fn int_funcs_roundtrip() {
        for f in IntFunc::ALL {
            let (op, code) = f.encoding();
            assert_eq!(IntFunc::from_encoding(op, code), Some(f));
        }
    }

    #[test]
    fn fp_funcs_roundtrip() {
        for f in FpFunc::ALL {
            assert_eq!(FpFunc::from_function(f.function()), Some(f));
        }
    }

    #[test]
    fn pal_funcs_roundtrip() {
        for n in 0..10 {
            let f = PalFunc::from_number(n).unwrap();
            assert_eq!(f.number(), n);
        }
        assert!(PalFunc::from_number(0x100).is_none());
    }

    #[test]
    fn branch_cond_eval_matches_semantics() {
        assert!(BranchCond::Eq.eval(0));
        assert!(!BranchCond::Eq.eval(1));
        assert!(BranchCond::Lt.eval(-1i64 as u64));
        assert!(!BranchCond::Lt.eval(0));
        assert!(BranchCond::Ge.eval(0));
        assert!(BranchCond::Lbs.eval(3));
        assert!(BranchCond::Lbc.eval(2));
    }

    #[test]
    fn fp_branch_cond_handles_signed_zero() {
        let neg_zero = (-0.0f64).to_bits();
        assert!(FpBranchCond::Eq.eval(neg_zero));
        assert!(!FpBranchCond::Lt.eval(neg_zero));
        assert!(FpBranchCond::Ge.eval(neg_zero));
        assert!(FpBranchCond::Lt.eval((-2.5f64).to_bits()));
        assert!(FpBranchCond::Gt.eval(2.5f64.to_bits()));
    }

    #[test]
    fn unknown_opcodes_decode_to_none() {
        // Holes in the opcode map must be rejected, producing the paper's
        // illegal-instruction crash outcome for corrupted opcode fields.
        for bits in [0x03u32, 0x07, 0x0a, 0x14, 0x1b, 0x20, 0x2a] {
            assert!(Opcode::from_bits(bits).is_none(), "{bits:#x}");
        }
    }
}
