//! A small self-contained binary codec for checkpoints.
//!
//! The paper's GemFI checkpoints the whole simulator process with DMTCP;
//! this reproduction checkpoints the simulator's own state instead (see
//! `DESIGN.md`). State structs across the workspace implement [`Codec`] so a
//! whole-machine snapshot serializes to a deterministic, versioned byte
//! stream without pulling a serialization-format dependency.
//!
//! The format is little-endian, length-prefixed for variable-size data, and
//! intentionally boring.

use std::fmt;

/// Errors produced while decoding a checkpoint byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// An enum discriminant or magic value was invalid.
    InvalidTag {
        /// Description of what was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A declared length is implausible (corrupt stream).
    LengthOverflow {
        /// The declared length.
        len: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of stream: needed {needed} bytes, {remaining} remain")
            }
            CodecError::InvalidTag { what, value } => {
                write!(f, "invalid tag {value} while decoding {what}")
            }
            CodecError::LengthOverflow { len } => write!(f, "implausible length {len}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only little-endian byte sink.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Appends a `usize` as `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends raw bytes with a length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// A cursor over an encoded byte stream.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`].
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`].
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        // Infallible: take(4) either errors or returns exactly 4 bytes.
        #[allow(clippy::expect_used)]
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`].
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        // Infallible: take(8) either errors or returns exactly 8 bytes.
        #[allow(clippy::expect_used)]
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`].
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a length prefix, sanity-checking it against the remaining
    /// stream so corrupt lengths fail fast instead of allocating wildly.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] / [`CodecError::LengthOverflow`].
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u64()?;
        if len > (1 << 40) {
            return Err(CodecError::LengthOverflow { len });
        }
        Ok(len as usize)
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] / [`CodecError::InvalidTag`].
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::InvalidTag { what: "bool", value: v as u64 }),
        }
    }

    /// Reads length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] / [`CodecError::LengthOverflow`].
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Codec errors, or [`CodecError::InvalidTag`] for invalid UTF-8.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CodecError::InvalidTag { what: "utf-8 string", value: 0 })
    }
}

/// Binary encode/decode for checkpointable state.
pub trait Codec: Sized {
    /// Appends this value to the writer.
    fn encode(&self, w: &mut ByteWriter);

    /// Decodes a value from the reader.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated or corrupt stream.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;

    /// Convenience: encode to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decode from a byte slice, requiring full consumption.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated, corrupt, or over-long stream.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::InvalidTag {
                what: "trailing bytes",
                value: r.remaining() as u64,
            });
        }
        Ok(v)
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl Codec for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u8()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_bool()
    }
}

impl Codec for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_string()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut v = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            v => Err(CodecError::InvalidTag { what: "Option", value: v as u64 }),
        }
    }
}

impl crate::regs::RegFile {
    /// Encodes both register banks.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        for v in self.int_bank() {
            w.put_u64(*v);
        }
        for v in self.fp_bank() {
            w.put_u64(*v);
        }
    }

    /// Decodes both register banks.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated stream.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut rf = crate::regs::RegFile::new();
        for i in 0..crate::NUM_INT_REGS {
            rf.int_bank_mut()[i] = r.get_u64()?;
        }
        for i in 0..crate::NUM_FP_REGS {
            rf.fp_bank_mut()[i] = r.get_u64()?;
        }
        Ok(rf)
    }
}

impl Codec for crate::arch::ArchState {
    fn encode(&self, w: &mut ByteWriter) {
        self.regs.encode_state(w);
        w.put_u64(self.pc);
        w.put_u64(self.pcbb);
        w.put_u64(self.psr);
        w.put_u64(self.exc_addr);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(crate::arch::ArchState {
            regs: crate::regs::RegFile::decode_state(r)?,
            pc: r.get_u64()?,
            pcbb: r.get_u64()?,
            psr: r.get_u64()?,
            exc_addr: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchState;
    use crate::regs::IntReg;

    #[test]
    fn primitive_roundtrips() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-5);
        w.put_bool(true);
        w.put_bytes(b"hello");
        w.put_str("käse");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_string().unwrap(), "käse");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_is_detected() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u64(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(r.get_bool(), Err(CodecError::InvalidTag { .. })));
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_bytes(&v.to_bytes()).unwrap(), v);
        let o: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::from_bytes(&o.to_bytes()).unwrap(), o);
        let n: Option<u64> = None;
        assert_eq!(Option::<u64>::from_bytes(&n.to_bytes()).unwrap(), n);
    }

    #[test]
    fn archstate_roundtrips_bit_exactly() {
        let mut a = ArchState::new(0x1_0000);
        a.regs.write_int(IntReg::new(5).unwrap(), 0xabcd);
        a.regs.write_fp(crate::regs::FpReg::new(3).unwrap(), -0.125);
        a.pcbb = 0x4400;
        let b = ArchState::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert!(u64::from_bytes(&bytes).is_err());
    }
}
