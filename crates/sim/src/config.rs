//! Machine configuration.

use gemfi_cpu::CpuKind;
use gemfi_mem::MemConfig;

/// Configuration of a [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// CPU model to boot with.
    pub cpu: CpuKind,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Timer quantum in ticks (0 disables preemption). Only meaningful for
    /// multi-threaded guests.
    pub quantum: u64,
    /// Watchdog: maximum ticks before a run is declared hung. Corrupted
    /// control flow routinely produces infinite loops; the watchdog turns
    /// them into the paper's *Crashed* outcome class.
    pub max_ticks: u64,
    /// Guest instructions of synthetic "OS boot" work executed before the
    /// program entry (a spin stub in the kernel region). Models the Linux
    /// boot the paper's checkpoints fast-forward past (Sec. III-D: "one
    /// simulation up to the point when fault injection is activated
    /// (including booting of the operating system…)"); 0 disables it.
    pub boot_spin: u64,
    /// Dormancy-aware hook elision: when the hooks report a dormancy
    /// horizon, `run`/`run_for` sprint to it with an uninstrumented
    /// interpreter loop, delivering stage-event counters in bulk at batch
    /// boundaries. Architecturally invisible (same injections, records,
    /// outcomes, and bit-identical state either way) — a pure performance
    /// knob, which is why it is deliberately never serialized into
    /// checkpoints (v2 images stay byte-stable). Disable for the ablation.
    pub elide: bool,
}

impl Default for MachineConfig {
    /// The Sec. IV experimental platform: a single-core machine with split
    /// L1s, a unified L2 and a tournament predictor, booted in atomic mode
    /// (campaigns switch to O3 around the injection point).
    fn default() -> MachineConfig {
        MachineConfig {
            cpu: CpuKind::Atomic,
            mem: MemConfig { phys_size: 16 << 20, ..MemConfig::default() },
            quantum: 10_000,
            max_ticks: 2_000_000_000,
            boot_spin: 0,
            elide: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_core_atomic() {
        let c = MachineConfig::default();
        assert_eq!(c.cpu, CpuKind::Atomic);
        assert!(c.max_ticks > 0);
    }
}
