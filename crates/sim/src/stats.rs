//! Whole-machine statistics.

use gemfi_mem::MemStats;
use std::fmt;

/// The simulator statistics surface the paper's no-fault validation compares
/// ("as well as the statistical results provided by the simulator. For all
/// benchmarks the results were identical").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Simulated ticks elapsed.
    pub ticks: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Instructions committed inside the dormancy-elided fast path (a
    /// subset of `instructions`; purely diagnostic — elision is
    /// architecturally invisible).
    pub instructions_elided: u64,
    /// Context switches performed by the kernel.
    pub context_switches: u64,
    /// Memory hierarchy counters.
    pub mem: MemStats,
    /// Conditional-branch predictor lookups (pipelined models only).
    pub branch_lookups: u64,
    /// Branch mispredictions (pipelined models only).
    pub branch_mispredicts: u64,
    /// Speculative instructions squashed (O3 only).
    pub squashed: u64,
}

impl SimStats {
    /// Instructions per tick.
    pub fn ipc(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.instructions as f64 / self.ticks as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ticks: {}", self.ticks)?;
        writeln!(
            f,
            "instructions: {} (ipc {:.3}, {} elided)",
            self.instructions,
            self.ipc(),
            self.instructions_elided
        )?;
        writeln!(f, "context switches: {}", self.context_switches)?;
        writeln!(
            f,
            "branches: {} lookups, {} mispredicts",
            self.branch_lookups, self.branch_mispredicts
        )?;
        writeln!(f, "squashed: {}", self.squashed)?;
        write!(f, "{}", self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_ticks() {
        assert_eq!(SimStats::default().ipc(), 0.0);
        let s = SimStats { ticks: 10, instructions: 5, ..SimStats::default() };
        assert_eq!(s.ipc(), 0.5);
    }
}
