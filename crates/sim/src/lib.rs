//! `ghost5` — the full-system simulator the GemFI reproduction runs on.
//!
//! This crate binds the substrates together into a [`Machine`]: one CPU (of
//! any of the four models), the classic memory hierarchy, and the `palos`
//! kernel, advanced by a tick loop with timer interrupts and a watchdog.
//! A machine is generic over its [`gemfi_cpu::FaultHooks`]; instantiating it with
//! [`gemfi_cpu::NoopHooks`] yields the "unmodified gem5" baseline while the
//! GemFI engine (the `gemfi` crate) plugs in the fault-injection behaviour.
//!
//! The machine also provides the two workflow features the paper's Sec. V
//! performance evaluation measures:
//!
//! * **checkpoint/restore** ([`Machine::checkpoint`], [`Machine::restore`]) —
//!   the fast-forward mechanism of Fig. 3/Fig. 8 (our substitution for
//!   DMTCP; see `DESIGN.md`);
//! * **CPU-model switching** ([`Machine::switch_cpu`]) — O3 until the fault
//!   commits or squashes, atomic afterwards (Sec. IV-B methodology).
//!
//! # Example
//!
//! ```
//! use gemfi_asm::{Assembler, Reg};
//! use gemfi_cpu::NoopHooks;
//! use gemfi_sim::{Machine, MachineConfig, RunExit};
//!
//! let mut a = Assembler::new();
//! a.li(Reg::A0, 7);
//! a.pal(gemfi_isa::PalFunc::Exit);
//! let program = a.finish().expect("assembles");
//!
//! let mut m = Machine::boot(MachineConfig::default(), &program, NoopHooks).expect("boots");
//! assert_eq!(m.run(), RunExit::Halted(7));
//! ```

// Guest-reachable crate: new unwrap/expect sites need an explicit allow with
// a written justification (fault containment, see DESIGN.md).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod checkpoint;
mod config;
mod loader;
mod machine;
mod stats;

pub use checkpoint::{Checkpoint, CheckpointHeader};
pub use config::MachineConfig;
pub use gemfi_isa::SimError;
pub use machine::{Machine, RunExit};
pub use stats::SimStats;
