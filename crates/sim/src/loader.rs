//! Program loading.

use gemfi_asm::{Program, TEXT_BASE};
use gemfi_isa::Trap;
use gemfi_mem::MemorySystem;

/// Writes a linked program image into guest memory.
///
/// # Errors
///
/// [`Trap::UnmappedAccess`] when the image does not fit the configured
/// physical memory.
pub fn load_program(mem: &mut MemorySystem, program: &Program) -> Result<(), Trap> {
    let mut text = Vec::with_capacity(program.text_words().len() * 4);
    for w in program.text_words() {
        text.extend_from_slice(&w.to_le_bytes());
    }
    mem.write_slice(TEXT_BASE, &text)?;
    mem.write_slice(program.data_base(), program.data_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemfi_asm::{Assembler, Reg};
    use gemfi_mem::MemConfig;

    #[test]
    fn loads_text_and_data() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 1);
        a.dsym("blob");
        a.data_u64(&[0xfeed]);
        let p = a.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig { phys_size: 1 << 20, ..MemConfig::default() });
        load_program(&mut mem, &p).unwrap();
        assert_eq!(mem.read_u32_functional(TEXT_BASE).unwrap(), p.text_words()[0]);
        assert_eq!(mem.read_u64_functional(p.symbol("blob").unwrap()).unwrap(), 0xfeed);
    }

    #[test]
    fn too_small_memory_is_rejected() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 1);
        let p = a.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig {
            phys_size: 0x8000, // smaller than TEXT_BASE
            ..MemConfig::default()
        });
        assert!(load_program(&mut mem, &p).is_err());
    }
}
