//! Whole-machine checkpoints (the DMTCP substitution).
//!
//! A [`Checkpoint`] captures everything a resumed simulation can observe:
//! architectural state, guest memory, kernel state, and simulation time.
//! Caches and predictors restore cold (gem5's semantics when restoring into
//! a different CPU model). Checkpoints serialize with the workspace's
//! [`Codec`] into a versioned binary file — the "network share" objects of
//! the paper's NoW protocol (Sec. III-E step 2).
//!
//! The file starts with a self-describing header — magic, format version,
//! and an FNV-1a digest of the payload — so campaign tooling can cheaply
//! fingerprint a spooled checkpoint ([`Checkpoint::peek_header`]) without
//! decoding it. The resume path compares this digest against the one
//! recorded in the campaign journal and rejects a stale or swapped
//! checkpoint before re-running any experiment against the wrong state.
//!
//! A checkpoint is immutable once captured (its fields are private), which
//! lets [`Checkpoint::digest`] memoize the payload fingerprint: the first
//! call re-encodes the payload, every later call — the resume path
//! validates digests repeatedly — returns the cached value. Decoding primes
//! the cache for free from the verified file header.

use crate::config::MachineConfig;
use gemfi_cpu::CpuKind;
use gemfi_isa::codec::{ByteReader, ByteWriter, Codec, CodecError};
use gemfi_isa::ArchState;
use gemfi_kernel::Kernel;
use gemfi_mem::{MemConfig, MemorySystem};
use std::sync::OnceLock;

const MAGIC: u32 = 0x47_46_49_43; // "GFIC"
const VERSION: u32 = 2;

/// FNV-1a, 64-bit — the checkpoint payload fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The decoded file header of a serialized checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Format version ([`Checkpoint::decode`] accepts exactly the current
    /// one).
    pub version: u32,
    /// FNV-1a digest of the encoded payload.
    pub digest: u64,
}

/// A point-in-time snapshot of a [`crate::Machine`].
///
/// Immutable after capture: restores never mutate the checkpoint (per-run
/// overrides like the watchdog budget are passed to
/// [`crate::Machine::restore_with`] instead), so one `Checkpoint` — usually
/// behind an `Arc` — safely fans out to any number of concurrent
/// experiments, each sharing its memory pages copy-on-write.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    config: MachineConfig,
    arch: ArchState,
    mem: MemorySystem,
    kernel: Kernel,
    tick: u64,
    instret: u64,
    /// Lazily computed payload digest; sound to cache because every other
    /// field is immutable.
    digest: OnceLock<u64>,
}

impl PartialEq for Checkpoint {
    /// State equality; whether the digest has been computed yet is not
    /// state.
    fn eq(&self, other: &Checkpoint) -> bool {
        self.config == other.config
            && self.arch == other.arch
            && self.mem == other.mem
            && self.kernel == other.kernel
            && self.tick == other.tick
            && self.instret == other.instret
    }
}

fn encode_cpu_kind(k: CpuKind, w: &mut ByteWriter) {
    w.put_u8(match k {
        CpuKind::Atomic => 0,
        CpuKind::Timing => 1,
        CpuKind::InOrder => 2,
        CpuKind::O3 => 3,
    });
}

fn decode_cpu_kind(r: &mut ByteReader<'_>) -> Result<CpuKind, CodecError> {
    Ok(match r.get_u8()? {
        0 => CpuKind::Atomic,
        1 => CpuKind::Timing,
        2 => CpuKind::InOrder,
        3 => CpuKind::O3,
        v => return Err(CodecError::InvalidTag { what: "CpuKind", value: v as u64 }),
    })
}

impl Checkpoint {
    /// Assembles a checkpoint from captured machine state.
    /// [`crate::Machine::checkpoint`] is the usual producer; tests build
    /// variants directly.
    pub fn new(
        config: MachineConfig,
        arch: ArchState,
        mem: MemorySystem,
        kernel: Kernel,
        tick: u64,
        instret: u64,
    ) -> Checkpoint {
        Checkpoint { config, arch, mem, kernel, tick, instret, digest: OnceLock::new() }
    }

    /// The machine configuration at capture time.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Architectural state of the (single) hardware context.
    pub fn arch(&self) -> &ArchState {
        &self.arch
    }

    /// Guest memory and hierarchy configuration.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Kernel state (threads, console, heap break, …).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Simulated time at capture.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Instructions committed at capture.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    fn encode_payload(&self, w: &mut ByteWriter) {
        encode_cpu_kind(self.config.cpu, w);
        w.put_u64(self.config.quantum);
        w.put_u64(self.config.max_ticks);
        w.put_u64(self.config.boot_spin);
        self.arch.encode(w);
        self.mem.encode(w);
        self.kernel.encode(w);
        w.put_u64(self.tick);
        w.put_u64(self.instret);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Checkpoint, CodecError> {
        let cpu = decode_cpu_kind(r)?;
        let quantum = r.get_u64()?;
        let max_ticks = r.get_u64()?;
        let boot_spin = r.get_u64()?;
        let arch = ArchState::decode(r)?;
        let mem = MemorySystem::decode(r)?;
        let kernel = Kernel::decode(r)?;
        let tick = r.get_u64()?;
        let instret = r.get_u64()?;
        let mem_config: MemConfig = *mem.config();
        // `elide` is a host-side performance knob, deliberately absent from
        // the image (like `mem.predecode`/`mem.cow`): decode restores the
        // default and the runner re-applies its own setting.
        Ok(Checkpoint::new(
            MachineConfig { cpu, mem: mem_config, quantum, max_ticks, boot_spin, elide: true },
            arch,
            mem,
            kernel,
            tick,
            instret,
        ))
    }

    /// The payload fingerprint this checkpoint would carry in its file
    /// header — the identity the campaign journal records and the resume
    /// path verifies. Computed once and cached (the checkpoint is
    /// immutable); decoding primes the cache from the verified header, so
    /// the resume-validation path never re-encodes the RLE image at all.
    pub fn digest(&self) -> u64 {
        *self.digest.get_or_init(|| {
            let mut w = ByteWriter::new();
            self.encode_payload(&mut w);
            fnv1a(&w.into_bytes())
        })
    }

    /// Reads just the header of a serialized checkpoint, without decoding
    /// (or validating) the payload.
    ///
    /// # Errors
    ///
    /// [`CodecError`] for short or foreign files.
    pub fn peek_header(bytes: &[u8]) -> Result<CheckpointHeader, CodecError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(CodecError::InvalidTag { what: "checkpoint magic", value: magic as u64 });
        }
        let version = r.get_u32()?;
        let digest = r.get_u64()?;
        Ok(CheckpointHeader { version, digest })
    }
}

impl Codec for Checkpoint {
    fn encode(&self, w: &mut ByteWriter) {
        let mut pw = ByteWriter::new();
        self.encode_payload(&mut pw);
        let payload = pw.into_bytes();
        // Serializing necessarily re-encodes the payload, so prime (or
        // reuse) the digest cache while the bytes are in hand.
        let digest = *self.digest.get_or_init(|| fnv1a(&payload));
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w.put_u64(digest);
        w.put_bytes(&payload);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(CodecError::InvalidTag { what: "checkpoint magic", value: magic as u64 });
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(CodecError::InvalidTag {
                what: "checkpoint version",
                value: version as u64,
            });
        }
        let digest = r.get_u64()?;
        let payload = r.get_bytes()?;
        if fnv1a(payload) != digest {
            return Err(CodecError::InvalidTag { what: "checkpoint digest", value: digest });
        }
        let ckpt = Checkpoint::decode_payload(&mut ByteReader::new(payload))?;
        // The header digest was just verified against the payload — prime
        // the cache so resume validation never re-encodes the image.
        let _ = ckpt.digest.set(digest);
        Ok(ckpt)
    }
}

impl Checkpoint {
    /// Writes the checkpoint to a file (the paper's network-share objects).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// I/O errors, or a [`CodecError`] wrapped as `InvalidData` for corrupt
    /// files.
    pub fn load(path: &std::path::Path) -> std::io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        Checkpoint::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Reads just the header of a checkpoint file (cheap fingerprinting for
    /// resume validation).
    ///
    /// # Errors
    ///
    /// I/O errors, or a [`CodecError`] wrapped as `InvalidData`.
    pub fn load_header(path: &std::path::Path) -> std::io::Result<CheckpointHeader> {
        let mut bytes = [0u8; 16];
        let full = std::fs::read(path)?;
        let n = full.len().min(16);
        bytes[..n].copy_from_slice(&full[..n]);
        Checkpoint::peek_header(&bytes[..n])
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, RunExit};
    use gemfi_asm::{Assembler, Reg};
    use gemfi_cpu::NoopHooks;

    fn checkpointing_machine() -> (Machine<NoopHooks>, Checkpoint) {
        let mut a = Assembler::new();
        a.li(Reg::R1, 7);
        a.fi_read_init();
        a.li(Reg::A0, 3);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let cfg = MachineConfig {
            mem: gemfi_mem::MemConfig { phys_size: 4 << 20, ..gemfi_mem::MemConfig::default() },
            ..MachineConfig::default()
        };
        let mut m = Machine::boot(cfg, &p, NoopHooks).unwrap();
        assert_eq!(m.run(), RunExit::CheckpointRequest);
        let c = m.checkpoint();
        (m, c)
    }

    fn assert_equivalent(a: &Checkpoint, b: &Checkpoint) {
        // Cache/stat state restores cold by design, so compare the
        // architecturally observable parts.
        assert_eq!(a.arch(), b.arch());
        assert_eq!(a.kernel(), b.kernel());
        assert_eq!(a.tick(), b.tick());
        assert_eq!(a.instret(), b.instret());
        assert_eq!(a.config(), b.config());
        let size = a.mem().config().phys_size;
        assert_eq!(
            a.mem().read_slice(0, size).unwrap(),
            b.mem().read_slice(0, size).unwrap(),
            "memory images differ"
        );
    }

    #[test]
    fn checkpoint_bytes_roundtrip() {
        let (_, c) = checkpointing_machine();
        let restored = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_equivalent(&restored, &c);
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let (_, c) = checkpointing_machine();
        let dir = std::env::temp_dir().join("gemfi-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ckpt");
        c.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_equivalent(&loaded, &c);
        let header = Checkpoint::load_header(&path).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.digest, c.digest());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let (_, c) = checkpointing_machine();
        let mut bytes = c.to_bytes();
        bytes[0] ^= 0xff;
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn stale_version_is_rejected() {
        let (_, c) = checkpointing_machine();
        let mut bytes = c.to_bytes();
        bytes[4] = 1; // little-endian version field → v1
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(format!("{err:?}").contains("version"), "{err:?}");
        // The header remains peekable even for rejected versions.
        assert_eq!(Checkpoint::peek_header(&bytes).unwrap().version, 1);
    }

    #[test]
    fn corrupt_payload_fails_the_digest() {
        let (_, c) = checkpointing_machine();
        let mut bytes = c.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(format!("{err:?}").contains("digest"), "{err:?}");
    }

    #[test]
    fn digest_identifies_distinct_checkpoints() {
        let (_, a) = checkpointing_machine();
        let b = Checkpoint::new(
            *a.config(),
            a.arch().clone(),
            a.mem().clone(),
            a.kernel().clone(),
            a.tick() + 1,
            a.instret(),
        );
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn digest_is_cached_and_primed_by_decode() {
        let (_, a) = checkpointing_machine();
        let first = a.digest();
        assert_eq!(first, a.digest(), "memoized digest must be stable");
        // A decoded checkpoint carries the verified header digest already.
        let decoded = Checkpoint::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(decoded.digest.get().copied(), Some(first), "decode must prime the cache");
        assert_eq!(decoded.digest(), first);
    }

    #[test]
    fn restored_machine_finishes_like_the_original() {
        let (mut orig, c) = checkpointing_machine();
        let mut rest = Machine::restore(&c, None, NoopHooks);
        assert_eq!(orig.run(), rest.run());
        assert_eq!(orig.instret(), rest.instret());
    }
}
