//! The [`Machine`]: one simulated computer.

use crate::checkpoint::Checkpoint;
use crate::config::MachineConfig;
use crate::loader::load_program;
use crate::stats::SimStats;
use gemfi_asm::Program;
use gemfi_cpu::{Cpu, CpuKind, Dormancy, ElidedHooks, FaultHooks, StepEvent};
use gemfi_isa::{ArchState, ExecError, SimError, Trap, MAX_SUPERBLOCK_UOPS};
use gemfi_kernel::Kernel;
use gemfi_mem::{MemorySystem, Ticks};
use std::fmt;

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// All guest threads exited (or an explicit halt); carries the main
    /// thread's exit code.
    Halted(u64),
    /// A fatal guest trap — the paper's *Crashed* outcome.
    Trapped(Trap),
    /// The watchdog tick budget was exhausted (hung execution; also
    /// classified as *Crashed*).
    Watchdog,
    /// A `fi_read_init_all()` committed: the caller should take a
    /// checkpoint (the machine is quiesced) and resume with `run`.
    CheckpointRequest,
    /// A simulator invariant was violated — a tool bug, not a guest
    /// outcome. Campaigns classify this as *Infrastructure*, keeping it out
    /// of the paper's guest outcome classes.
    SimError(SimError),
}

impl fmt::Display for RunExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunExit::Halted(c) => write!(f, "halted (exit code {c})"),
            RunExit::Trapped(t) => write!(f, "trapped: {t}"),
            RunExit::Watchdog => write!(f, "watchdog timeout"),
            RunExit::CheckpointRequest => write!(f, "checkpoint requested"),
            RunExit::SimError(e) => write!(f, "{e}"),
        }
    }
}

/// Address of the synthetic boot stub in the kernel scratch region.
const BOOT_STUB_BASE: u64 = 0x3000;

/// Writes a spin-then-jump stub into the kernel region and points the boot
/// context at it: `r1 = n; while (--r1 > 0); jmp entry`.
fn install_boot_stub(
    mem: &mut MemorySystem,
    arch: &mut ArchState,
    spins: u64,
    entry: u64,
) -> Result<(), Trap> {
    use gemfi_isa::opcode::{BranchCond, IntFunc};
    use gemfi_isa::{encode, Instr, IntReg, JumpKind, Operand};
    // Infallible: 1 and 2 are valid register indices by construction.
    #[allow(clippy::expect_used)]
    let r1 = IntReg::new(1).expect("r1");
    #[allow(clippy::expect_used)]
    let r2 = IntReg::new(2).expect("r2");
    let split = |value: u64| {
        let lo = value as i16;
        let hi = ((value as i64).wrapping_sub(lo as i64) >> 16) as i16;
        (hi, lo)
    };
    let (nhi, nlo) = split(spins.min(1 << 30));
    let (ehi, elo) = split(entry);
    let stub = [
        Instr::Ldah { ra: r1, rb: IntReg::ZERO, disp: nhi },
        Instr::Lda { ra: r1, rb: r1, disp: nlo },
        Instr::IntOp { func: IntFunc::Subq, ra: r1, rb: Operand::Lit(1), rc: r1 },
        Instr::CondBr { cond: BranchCond::Gt, ra: r1, disp: -2 },
        Instr::Ldah { ra: r2, rb: IntReg::ZERO, disp: ehi },
        Instr::Lda { ra: r2, rb: r2, disp: elo },
        Instr::Jump { kind: JumpKind::Jmp, ra: IntReg::ZERO, rb: r2 },
    ];
    for (i, instr) in stub.iter().enumerate() {
        mem.write_u32_functional(BOOT_STUB_BASE + i as u64 * 4, encode(instr).0)?;
    }
    arch.pc = BOOT_STUB_BASE;
    Ok(())
}

/// One simulated computer: CPU + memory + kernel + fault hooks.
#[derive(Debug)]
pub struct Machine<H> {
    config: MachineConfig,
    arch: ArchState,
    mem: MemorySystem,
    kernel: Kernel,
    cpu: Cpu,
    hooks: H,
    tick: Ticks,
    instret: u64,
    /// Instructions committed inside elided sprints (diagnostic; not
    /// serialized — derived performance state, like the predecode cache).
    instret_elided: u64,
    next_preempt: Ticks,
    finished: Option<RunExit>,
}

impl<H: FaultHooks> Machine<H> {
    /// Boots a machine: loads the program, initializes the kernel and the
    /// first thread, and positions the CPU at the entry point.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the image does not fit guest memory.
    pub fn boot(config: MachineConfig, program: &Program, hooks: H) -> Result<Machine<H>, Trap> {
        let mut mem = MemorySystem::new(config.mem);
        load_program(&mut mem, program)?;
        let mut arch = ArchState::default();
        let mut kernel = Kernel::boot(
            &mut arch,
            &mut mem,
            program.entry(),
            program.image_end(),
            config.quantum,
        )?;
        if config.boot_spin > 0 {
            install_boot_stub(&mut mem, &mut arch, config.boot_spin, program.entry())?;
            // Re-save the boot thread's context so its PCB records the stub
            // as the resume point (it has not run yet).
            let _ = &mut kernel;
        }
        let cpu = Cpu::new(config.cpu, arch.pc);
        Ok(Machine {
            config,
            arch,
            mem,
            kernel,
            cpu,
            hooks,
            tick: 0,
            instret: 0,
            instret_elided: 0,
            next_preempt: if config.quantum > 0 { config.quantum } else { u64::MAX },
            finished: None,
        })
    }

    /// Reconstructs a machine from a checkpoint. The CPU model starts fresh
    /// (cold caches and predictor — gem5's restore semantics) in the
    /// checkpoint's CPU mode unless `cpu_override` says otherwise.
    pub fn restore(checkpoint: &Checkpoint, cpu_override: Option<CpuKind>, hooks: H) -> Machine<H> {
        Machine::restore_with(checkpoint, cpu_override, None, hooks)
    }

    /// [`Machine::restore`] with a per-run watchdog override: `max_ticks`
    /// replaces the checkpointed budget for this machine only. The campaign
    /// runner bounds every experiment relative to the fault-free kernel
    /// time this way — as a restore parameter, not by mutating a clone of
    /// the (shared, immutable) checkpoint.
    ///
    /// The checkpoint is never written to: guest memory comes back as a
    /// copy-on-write page-table snapshot, so restore cost is O(pages)
    /// regardless of memory size and each restored machine pays only for
    /// the pages it subsequently dirties.
    ///
    /// A restore always starts the CPU model *fresh* (cold pipeline, cold
    /// predictor) and decode-cold, even when the checkpoint was captured
    /// from a warm machine — derived state is never serialized, so the
    /// image carries none to revive. This is deliberately different from
    /// [`Machine::fork_with`], which continues a live machine and must keep
    /// the microarchitectural state warm to stay tick-identical with it;
    /// even a fork, though, drops the (tick-invisible) predecode cache.
    /// `tests/fork_prefix_conformance.rs` pins both contracts.
    pub fn restore_with(
        checkpoint: &Checkpoint,
        cpu_override: Option<CpuKind>,
        max_ticks: Option<u64>,
        hooks: H,
    ) -> Machine<H> {
        let mut config = *checkpoint.config();
        if let Some(kind) = cpu_override {
            config.cpu = kind;
        }
        if let Some(budget) = max_ticks {
            config.max_ticks = budget;
        }
        let arch = checkpoint.arch().clone();
        let cpu = Cpu::new(config.cpu, arch.pc);
        // The predecode cache is derived state: a restored machine starts
        // with it empty, exactly like one rebuilt from the serialized image.
        // Cache tag/LRU state is likewise never serialized, so the restore
        // goes cache-cold even from an in-memory checkpoint.
        let mut mem = checkpoint.mem().clone();
        mem.clear_predecode();
        mem.clear_superblocks();
        mem.reset_caches();
        let tick = checkpoint.tick();
        Machine {
            config,
            arch,
            mem,
            kernel: checkpoint.kernel().clone(),
            cpu,
            hooks,
            tick,
            instret: checkpoint.instret(),
            instret_elided: 0,
            next_preempt: if config.quantum > 0 { tick + config.quantum } else { u64::MAX },
            finished: None,
        }
    }

    /// Flips the hook-elision fast path on or off for this machine (the
    /// knob is never serialized, so restored machines get the default and
    /// callers re-apply their setting here).
    pub fn set_elide(&mut self, on: bool) {
        self.config.elide = on;
    }

    /// Flips the superblock fast path on or off for this machine (like
    /// `elide`, the knob is never serialized: restored machines get the
    /// default and callers re-apply their setting here). Turning it off
    /// drops every cached translation.
    pub fn set_superblock(&mut self, on: bool) {
        self.config.mem.superblock = on;
        self.mem.set_superblock(on);
    }

    /// Forks this machine mid-run: an independent machine that continues
    /// from the exact same architectural *and* microarchitectural state,
    /// with `hooks` replacing this machine's hooks.
    ///
    /// Unlike [`Machine::restore`], which cold-starts the CPU model from a
    /// serialized image, a fork keeps the model warm — pipeline contents,
    /// branch-predictor state, the tick clock and the preempt phase all
    /// carry over — so the fork's future tick stream is bit-identical to
    /// this machine's. Guest memory is shared copy-on-write, making a fork
    /// O(page-table) like a restore.
    ///
    /// Derived state is *not* carried: the predecode cache drops at the
    /// fork, per the never-serialized contract (it is architecturally and
    /// tick-invisible, so dropping it cannot change behavior).
    pub fn fork_with<H2: FaultHooks>(&self, hooks: H2) -> Machine<H2> {
        let mut mem = self.mem.clone();
        mem.clear_predecode();
        mem.clear_superblocks();
        Machine {
            config: self.config,
            arch: self.arch.clone(),
            mem,
            kernel: self.kernel.clone(),
            cpu: self.cpu.clone(),
            hooks,
            tick: self.tick,
            instret: self.instret,
            instret_elided: self.instret_elided,
            next_preempt: self.next_preempt,
            finished: self.finished,
        }
    }

    /// Captures a checkpoint of the architectural machine state. Only valid
    /// at a quiesced point (no speculative work in flight) — [`Machine::run`]
    /// returns [`RunExit::CheckpointRequest`] exactly at such points.
    ///
    /// # Panics
    ///
    /// Panics if the CPU still has speculative work in flight.
    pub fn checkpoint(&self) -> Checkpoint {
        assert!(!self.cpu.has_in_flight(), "checkpoint requires a quiesced CPU");
        // Drop the (derived) predecode cache from the captured image so a
        // checkpoint taken from a warm machine is byte-identical to one
        // taken from a cold machine in the same architectural state. The
        // cache hierarchy goes cold too: the serialized image carries no
        // tag/LRU state, and the in-memory checkpoint must be
        // indistinguishable from its own byte round-trip — warm capture-time
        // tags differ between stepped and superblock execution, and must
        // not leak into restored runs.
        let mut mem = self.mem.clone();
        mem.clear_predecode();
        mem.clear_superblocks();
        mem.reset_caches();
        Checkpoint::new(
            self.config,
            self.arch.clone(),
            mem,
            self.kernel.clone(),
            self.tick,
            self.instret,
        )
    }

    /// Captures a checkpoint *without stopping*: the machine is untouched
    /// and keeps running afterwards. Returns `None` when the CPU still has
    /// speculative work in flight (O3 mid-burst) — callers advance to the
    /// next quiesced point and retry. On the simple models every
    /// instruction boundary is quiesced, so mid-run capture always
    /// succeeds there.
    ///
    /// Snapshot cost is O(pages) regardless of memory size: the captured
    /// image shares guest pages copy-on-write with the running machine,
    /// and the machine's later writes dirty private copies.
    pub fn try_checkpoint(&self) -> Option<Checkpoint> {
        if self.cpu.has_in_flight() {
            return None;
        }
        Some(self.checkpoint())
    }

    /// Switches the CPU model at an instruction boundary, discarding
    /// speculative state (the Sec. IV-B methodology: O3 until the injected
    /// fault commits or squashes, atomic afterwards).
    pub fn switch_cpu(&mut self, kind: CpuKind) {
        self.cpu.flush(&self.arch);
        if self.cpu.kind() != kind {
            self.cpu = Cpu::new(kind, self.arch.pc);
            // Keep the config in sync with the live model: the sprint's
            // superblock gate reads `config.cpu`, so a stale value would
            // silently disable (or worse, enable) block execution after a
            // switch — e.g. the post-fault atomic fast-forward.
            self.config.cpu = kind;
            // Model switches start decode-cold, mirroring gem5 (and keeping
            // the per-model statistics surfaces independent).
            self.mem.clear_predecode();
            self.mem.clear_superblocks();
        }
    }

    /// Advances the machine by one CPU step (one instruction on the simple
    /// models, one cycle on O3).
    pub fn step(&mut self) -> Option<RunExit> {
        if let Some(exit) = self.finished {
            return Some(exit);
        }
        if self.tick >= self.config.max_ticks {
            self.finished = Some(RunExit::Watchdog);
            return self.finished;
        }
        // Timer interrupt at quantum boundaries.
        if self.tick >= self.next_preempt {
            self.next_preempt = self.tick + self.config.quantum;
            self.cpu.flush(&self.arch);
            let old_pcbb = self.arch.pcbb;
            match self.kernel.timer_preempt(&mut self.arch, &mut self.mem) {
                Ok(switched) => {
                    if switched {
                        self.hooks.on_context_switch(0, self.arch.pcbb);
                        debug_assert_ne!(old_pcbb, self.arch.pcbb);
                        self.cpu.flush(&self.arch); // re-aim fetch at new thread
                    }
                }
                Err(t) => {
                    self.finished = Some(RunExit::Trapped(t));
                    return self.finished;
                }
            }
        }

        match self.cpu.step(
            0,
            &mut self.arch,
            &mut self.mem,
            &mut self.kernel,
            &mut self.hooks,
            self.tick,
        ) {
            Ok(r) => {
                self.tick += r.ticks;
                self.instret += r.committed;
                match r.event {
                    StepEvent::None => None,
                    StepEvent::CheckpointRequest => {
                        self.cpu.flush(&self.arch);
                        Some(RunExit::CheckpointRequest)
                    }
                    StepEvent::Halted(code) => {
                        self.finished = Some(RunExit::Halted(code));
                        self.finished
                    }
                }
            }
            Err(ExecError::Trap(t)) => {
                self.finished = Some(RunExit::Trapped(t));
                self.finished
            }
            Err(ExecError::Sim(e)) => {
                self.finished = Some(RunExit::SimError(e));
                self.finished
            }
        }
    }

    /// Runs until the machine halts, traps, exhausts the watchdog, or
    /// requests a checkpoint.
    pub fn run(&mut self) -> RunExit {
        loop {
            if self.config.elide {
                if let Some(exit) = self.sprint(Ticks::MAX) {
                    return exit;
                }
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Runs for at most `budget` additional ticks; `None` means the budget
    /// expired with the machine still running.
    pub fn run_for(&mut self, budget: Ticks) -> Option<RunExit> {
        let deadline = self.tick.saturating_add(budget);
        while self.tick < deadline {
            if self.config.elide {
                if let Some(exit) = self.sprint(deadline) {
                    return Some(exit);
                }
                if self.tick >= deadline {
                    return None;
                }
            }
            if let Some(exit) = self.step() {
                return Some(exit);
            }
        }
        None
    }

    /// Runs until the tick clock reaches at least `target` (checkpoint
    /// requests along the way are serviced by continuing, like every
    /// campaign loop). Returns the terminal exit when the machine halts,
    /// traps, or exhausts the watchdog first; `None` once `target` is
    /// reached with the machine still live. The stopping tick is the first
    /// step-start tick at or past `target`, a deterministic function of the
    /// machine's execution alone — snapshot-point capture and fork
    /// scheduling both rely on that.
    pub fn run_to_tick(&mut self, target: Ticks) -> Option<RunExit> {
        while self.tick < target {
            match self.run_for(target - self.tick) {
                None | Some(RunExit::CheckpointRequest) => {}
                Some(exit) => return Some(exit),
            }
        }
        None
    }

    /// Headroom a sprint leaves below the `events` horizon: strictly larger
    /// than the number of events any single stage can observe in one CPU
    /// step on any model (the simple/in-order models see at most ~2 per
    /// stage per instruction; O3 is bounded by its width-4 pipeline stages
    /// per cycle). Generous by >30×, and irrelevant to correctness unless a
    /// model could outrun it within one step.
    const EVENT_SLACK: u64 = 128;

    /// The elided fast path: while the hooks report a dormancy horizon,
    /// execute with hook dispatch compiled down to batch counters
    /// ([`ElidedHooks`]), stopping at the first machine-level boundary — the
    /// tick `deadline`, the next timer preempt, the watchdog budget, the
    /// event/tick horizon, or a batch-interrupting pseudo-op (fi_activate /
    /// context switch). Terminal events (halt, trap, checkpoint request) are
    /// handled exactly like [`Machine::step`] and returned; `None` hands
    /// control back to the fully hooked loop with the batch flushed.
    ///
    /// Stopping conditions are all checked against the tick at the *start*
    /// of a step — the same instant every hook inside that step observes —
    /// so the instruction stream, preempt points, and chunk boundaries are
    /// identical to the unelided loop.
    fn sprint(&mut self, deadline: Ticks) -> Option<RunExit> {
        if self.finished.is_some() {
            return self.finished;
        }
        let limit = deadline.min(self.next_preempt).min(self.config.max_ticks);
        if self.tick >= limit {
            return None;
        }
        let (event_bound, tick_limit) = match self.hooks.dormancy(0, self.tick) {
            Dormancy::Active => return None,
            Dormancy::Dormant => (u64::MAX, limit),
            Dormancy::Quiet { events, ticks } => {
                // The earliest firing is the `events`-th event of a stage /
                // the tick `now + ticks`: both are exclusive sprint bounds.
                if events <= Self::EVENT_SLACK {
                    return None;
                }
                (events - 1, limit.min(self.tick.saturating_add(ticks)))
            }
        };
        let unbounded = event_bound == u64::MAX;
        // Superblock execution only inside the sprint, only on the atomic
        // model (which charges one tick per committed instruction, so
        // skipping the hierarchy walk is tick-invisible), and only with no
        // lesion planted (micro-ops apply no lesion transforms). Skips and
        // pending fault windows never reach here: armed state forces
        // `Dormancy::Active` and pending windows bound `event_bound`/
        // `tick_limit`, which the per-block budget check below honors.
        let sb_ok = self.config.mem.superblock
            && self.config.cpu == CpuKind::Atomic
            && self.mem.lesions().is_empty();
        // Deadline bucketing: a block holds at most MAX_SUPERBLOCK_UOPS
        // micro-ops (n ticks, ≤ n events per stage on atomic), so while the
        // sprint is strictly below these saturating thresholds *any* block
        // fits and the per-block budget arithmetic is skipped. Near a bound
        // the thresholds saturate to 0 and the exact check takes over.
        let max_block = MAX_SUPERBLOCK_UOPS as u64;
        let safe_tick = tick_limit.saturating_sub(max_block);
        let safe_events = event_bound.saturating_sub(max_block.saturating_add(Self::EVENT_SLACK));
        let mut elided = ElidedHooks::new(&mut self.hooks);
        let mut exit = None;
        while self.tick < tick_limit
            && (unbounded
                || elided.max_stage_events().saturating_add(Self::EVENT_SLACK) <= event_bound)
        {
            if sb_ok {
                if let Some(block) = self.mem.superblock_at(self.arch.pc) {
                    let n = block.len() as u64;
                    // The whole block must fit below every sprint bound:
                    // on atomic, n micro-ops cost exactly n ticks and at
                    // most n events per stage. The bucketed fast path
                    // accepts any block far from the bounds; the exact
                    // per-block check runs only near a deadline. If the
                    // block does not fit, fall through to per-instruction
                    // stepping, which stops at precisely the same boundary
                    // as the knob-off run.
                    let fits = (self.tick < safe_tick
                        && (unbounded || elided.max_stage_events() < safe_events))
                        || (self.tick.saturating_add(n) <= tick_limit
                            && (unbounded
                                || elided
                                    .max_stage_events()
                                    .saturating_add(n)
                                    .saturating_add(Self::EVENT_SLACK)
                                    <= event_bound));
                    if fits {
                        let start_tick = self.tick;
                        let run = block.execute(&mut self.arch, &mut self.mem);
                        self.tick += run.committed;
                        self.instret += run.committed;
                        self.instret_elided += run.committed;
                        self.mem.note_superblock_run(run.committed);
                        // The last started instruction began at start_tick
                        // + (started - 1); started >= 1 for any block.
                        let last_now = run.started.checked_sub(1).map(|d| start_tick + d);
                        elided.record_block(0, last_now, run.events);
                        if let Some(t) = run.trap {
                            self.finished = Some(RunExit::Trapped(t));
                            exit = self.finished;
                            break;
                        }
                        continue;
                    }
                    self.mem.note_superblock_fallback();
                }
            }
            match self.cpu.step(
                0,
                &mut self.arch,
                &mut self.mem,
                &mut self.kernel,
                &mut elided,
                self.tick,
            ) {
                Ok(r) => {
                    self.tick += r.ticks;
                    self.instret += r.committed;
                    self.instret_elided += r.committed;
                    match r.event {
                        StepEvent::None => {}
                        StepEvent::CheckpointRequest => {
                            exit = Some(RunExit::CheckpointRequest);
                            break;
                        }
                        StepEvent::Halted(code) => {
                            self.finished = Some(RunExit::Halted(code));
                            exit = self.finished;
                            break;
                        }
                    }
                }
                Err(err) => {
                    self.finished = Some(match err {
                        ExecError::Trap(t) => RunExit::Trapped(t),
                        ExecError::Sim(e) => RunExit::SimError(e),
                    });
                    exit = self.finished;
                    break;
                }
            }
            if elided.interrupted() {
                break;
            }
        }
        elided.finish();
        if exit == Some(RunExit::CheckpointRequest) {
            self.cpu.flush(&self.arch);
        }
        exit
    }

    /// Current simulation time in ticks.
    pub fn tick(&self) -> Ticks {
        self.tick
    }

    /// Instructions committed so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// The active CPU model.
    pub fn cpu_kind(&self) -> CpuKind {
        self.cpu.kind()
    }

    /// Guest console output.
    pub fn console(&self) -> &[u8] {
        self.kernel.console()
    }

    /// Guest binary output channel.
    pub fn out_words(&self) -> &[u64] {
        self.kernel.out_words()
    }

    /// The architectural state (inspection).
    pub fn arch(&self) -> &ArchState {
        &self.arch
    }

    /// The memory system (host-side input placement / output extraction).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable memory access (host-side input placement).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// The fault hooks.
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Mutable access to the fault hooks (installing fault configurations).
    pub fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    /// Whole-machine statistics.
    pub fn stats(&self) -> SimStats {
        let (mut lookups, mut mispredicts, mut squashed) = (0, 0, 0);
        match &self.cpu {
            Cpu::InOrder(c) => {
                lookups = c.predictor().stats().lookups;
                mispredicts = c.predictor().stats().mispredicts;
            }
            Cpu::O3(c) => {
                lookups = c.predictor().stats().lookups;
                mispredicts = c.predictor().stats().mispredicts;
                squashed = c.stats().squashed;
            }
            _ => {}
        }
        SimStats {
            ticks: self.tick,
            instructions: self.instret,
            instructions_elided: self.instret_elided,
            context_switches: self.kernel.context_switches(),
            mem: self.mem.stats(),
            branch_lookups: lookups,
            branch_mispredicts: mispredicts,
            squashed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemfi_asm::{Assembler, Reg};
    use gemfi_cpu::NoopHooks;
    use gemfi_isa::PalFunc;

    fn small_config(cpu: CpuKind) -> MachineConfig {
        MachineConfig {
            cpu,
            mem: gemfi_mem::MemConfig { phys_size: 8 << 20, ..gemfi_mem::MemConfig::default() },
            quantum: 5_000,
            max_ticks: 50_000_000,
            ..MachineConfig::default()
        }
    }

    fn counting_program(n: i64) -> Program {
        let mut a = Assembler::new();
        a.li(Reg::R1, 0);
        a.li(Reg::R2, n);
        a.label("loop");
        a.addq_lit(Reg::R1, 1, Reg::R1);
        a.subq(Reg::R2, Reg::R1, Reg::R3);
        a.bgt(Reg::R3, "loop");
        a.mov(Reg::R1, Reg::A0);
        a.pal(PalFunc::Exit);
        a.finish().unwrap()
    }

    #[test]
    fn all_four_models_agree_on_the_result() {
        let p = counting_program(500);
        let mut exits = Vec::new();
        for kind in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
            let mut m = Machine::boot(small_config(kind), &p, NoopHooks).unwrap();
            exits.push(m.run());
        }
        assert!(exits.iter().all(|e| *e == RunExit::Halted(500)), "{exits:?}");
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 1111);
        a.fi_read_init();
        a.addq_lit(Reg::R1, 5, Reg::R1);
        a.mov(Reg::R1, Reg::A0);
        a.pal(PalFunc::Exit);
        let p = a.finish().unwrap();

        let mut m = Machine::boot(small_config(CpuKind::Atomic), &p, NoopHooks).unwrap();
        assert_eq!(m.run(), RunExit::CheckpointRequest);
        let ckpt = m.checkpoint();
        assert_eq!(m.run(), RunExit::Halted(1116));

        // Restore twice; both resumes see the same world.
        for kind in [None, Some(CpuKind::O3)] {
            let mut r = Machine::restore(&ckpt, kind, NoopHooks);
            assert_eq!(r.run(), RunExit::Halted(1116), "cpu override {kind:?}");
        }
    }

    #[test]
    fn switch_cpu_mid_run_preserves_semantics() {
        let p = counting_program(1000);
        let mut m = Machine::boot(small_config(CpuKind::O3), &p, NoopHooks).unwrap();
        // Run a while in O3, then switch to atomic (the campaign pattern).
        assert!(m.run_for(200).is_none());
        m.switch_cpu(CpuKind::Atomic);
        assert_eq!(m.run(), RunExit::Halted(1000));
    }

    #[test]
    fn watchdog_catches_infinite_loops() {
        let mut a = Assembler::new();
        a.label("spin");
        a.br("spin");
        let p = a.finish().unwrap();
        let mut cfg = small_config(CpuKind::Atomic);
        cfg.max_ticks = 10_000;
        let mut m = Machine::boot(cfg, &p, NoopHooks).unwrap();
        assert_eq!(m.run(), RunExit::Watchdog);
    }

    #[test]
    fn trap_is_reported_as_crash() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 0x7f_ffff_fff8);
        a.ldq(Reg::R2, 0, Reg::R1);
        let p = a.finish().unwrap();
        let mut m = Machine::boot(small_config(CpuKind::Atomic), &p, NoopHooks).unwrap();
        assert!(matches!(m.run(), RunExit::Trapped(Trap::UnmappedAccess { .. })));
    }

    #[test]
    fn multithreaded_guest_round_robins_under_timer() {
        // Main spawns a child that writes a word, then joins it.
        let mut a = Assembler::new();
        a.entry("main");
        a.label("child");
        a.li(Reg::A0, 0xc0de);
        a.pal(PalFunc::WriteWord);
        a.li(Reg::A0, 5);
        a.pal(PalFunc::Exit);
        a.label("main");
        a.la(Reg::A0, "child");
        a.li(Reg::A1, 0);
        a.li(Reg::A2, 0);
        a.pal(PalFunc::ThreadSpawn);
        a.mov(Reg::V0, Reg::A0);
        a.pal(PalFunc::ThreadJoin);
        a.mov(Reg::V0, Reg::A0); // join result = 5
        a.pal(PalFunc::Exit);
        let p = a.finish().unwrap();

        for kind in [CpuKind::Atomic, CpuKind::O3] {
            let mut m = Machine::boot(small_config(kind), &p, NoopHooks).unwrap();
            assert_eq!(m.run(), RunExit::Halted(5), "{kind}");
            assert_eq!(m.out_words(), &[0xc0de]);
        }
    }

    #[test]
    fn boot_spin_adds_work_but_not_semantics() {
        let p = counting_program(50);
        let mut plain = Machine::boot(small_config(CpuKind::Atomic), &p, NoopHooks).unwrap();
        let plain_exit = plain.run();
        let mut cfg = small_config(CpuKind::Atomic);
        cfg.boot_spin = 100_000;
        let mut spun = Machine::boot(cfg, &p, NoopHooks).unwrap();
        let spun_exit = spun.run();
        assert_eq!(plain_exit, spun_exit);
        assert_eq!(plain_exit, RunExit::Halted(50));
        assert!(
            spun.instret() > plain.instret() + 100_000,
            "boot spin must execute ~2 instructions per count: {} vs {}",
            spun.instret(),
            plain.instret()
        );
    }

    #[test]
    fn predecode_cache_warms_but_never_enters_checkpoints() {
        let p = counting_program(200);
        // Superblocks off: they would absorb the dormant loop and starve
        // the predecode counters this test pins.
        let mut cfg = small_config(CpuKind::Atomic);
        cfg.mem.superblock = false;
        let mut m = Machine::boot(cfg, &p, NoopHooks).unwrap();
        m.run();
        let s = m.stats();
        assert!(s.mem.predecode.hits > s.mem.predecode.misses, "loop must hit the warm cache");
        let ckpt = m.checkpoint();
        assert_eq!(
            ckpt.mem().stats().predecode,
            gemfi_mem::PredecodeStats::default(),
            "checkpoints must carry no predecode state"
        );

        // Disabling the knob changes the counters, not the outcome.
        let mut cfg = small_config(CpuKind::Atomic);
        cfg.mem.predecode = false;
        let mut off = Machine::boot(cfg, &p, NoopHooks).unwrap();
        assert_eq!(off.run(), RunExit::Halted(200));
        assert_eq!(off.stats().mem.predecode, gemfi_mem::PredecodeStats::default());
    }

    #[test]
    fn switch_cpu_goes_decode_cold() {
        let p = counting_program(1000);
        let mut cfg = small_config(CpuKind::Atomic);
        cfg.mem.superblock = false;
        let mut m = Machine::boot(cfg, &p, NoopHooks).unwrap();
        assert!(m.run_for(500).is_none());
        assert!(m.stats().mem.predecode.accesses() > 0);
        m.switch_cpu(CpuKind::InOrder);
        assert_eq!(m.stats().mem.predecode, gemfi_mem::PredecodeStats::default());
        assert_eq!(m.run(), RunExit::Halted(1000));
    }

    #[test]
    fn superblocks_warm_on_dormant_atomic_but_never_enter_checkpoints() {
        let p = counting_program(200);
        let mut m = Machine::boot(small_config(CpuKind::Atomic), &p, NoopHooks).unwrap();
        assert_eq!(m.run(), RunExit::Halted(200));
        let s = m.stats().mem.superblock;
        assert!(s.blocks_built > 0, "dormant atomic run must translate");
        assert!(s.hits > 0, "the loop must hit the warm translation cache");
        assert!(s.uops_executed > 0);
        let ckpt = m.checkpoint();
        assert_eq!(
            ckpt.mem().stats().superblock,
            gemfi_mem::SuperblockStats::default(),
            "checkpoints must carry no superblock state"
        );

        // Same outcome, same tick count, knob off.
        let mut cfg = small_config(CpuKind::Atomic);
        cfg.mem.superblock = false;
        let mut off = Machine::boot(cfg, &p, NoopHooks).unwrap();
        assert_eq!(off.run(), RunExit::Halted(200));
        assert_eq!(off.stats().mem.superblock, gemfi_mem::SuperblockStats::default());
        assert_eq!((off.tick(), off.instret()), (m.tick(), m.instret()));
        assert_eq!(off.arch(), m.arch());
    }

    #[test]
    fn superblocks_run_only_on_the_atomic_model() {
        let p = counting_program(100);
        for kind in [CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
            let mut m = Machine::boot(small_config(kind), &p, NoopHooks).unwrap();
            assert_eq!(m.run(), RunExit::Halted(100), "{kind}");
            assert_eq!(
                m.stats().mem.superblock,
                gemfi_mem::SuperblockStats::default(),
                "{kind} must never touch the superblock cache"
            );
        }
    }

    #[test]
    fn set_superblock_off_drops_translations_mid_run() {
        let p = counting_program(1000);
        let mut m = Machine::boot(small_config(CpuKind::Atomic), &p, NoopHooks).unwrap();
        assert!(m.run_for(200).is_none());
        assert!(m.stats().mem.superblock.blocks_built > 0);
        m.set_superblock(false);
        assert_eq!(m.stats().mem.superblock, gemfi_mem::SuperblockStats::default());
        assert_eq!(m.run(), RunExit::Halted(1000));
        assert_eq!(m.stats().mem.superblock, gemfi_mem::SuperblockStats::default());
    }

    #[test]
    fn run_to_tick_stops_at_a_deterministic_step_start() {
        let p = counting_program(2_000);
        let mut a = Machine::boot(small_config(CpuKind::InOrder), &p, NoopHooks).unwrap();
        let mut b = Machine::boot(small_config(CpuKind::InOrder), &p, NoopHooks).unwrap();
        assert!(a.run_to_tick(1_234).is_none());
        // Reaching the same target through different intermediate stops
        // must land on the same tick with the same state.
        assert!(b.run_to_tick(700).is_none());
        assert!(b.run_to_tick(1_234).is_none());
        assert_eq!(a.tick(), b.tick());
        assert_eq!(a.instret(), b.instret());
        assert_eq!(a.arch(), b.arch());
        assert_eq!(a.run(), b.run());
    }

    #[test]
    fn try_checkpoint_captures_without_stopping() {
        let p = counting_program(1_000);
        let mut m = Machine::boot(small_config(CpuKind::Atomic), &p, NoopHooks).unwrap();
        assert!(m.run_to_tick(500).is_none());
        let ckpt = m.try_checkpoint().expect("atomic machines are always quiesced");
        assert_eq!(ckpt.tick(), m.tick());
        // The capture is a pure read: the machine keeps running to the same
        // result, and a restore of the snapshot agrees with it.
        assert_eq!(m.run(), RunExit::Halted(1000));
        let mut r = Machine::restore(&ckpt, None, NoopHooks);
        assert_eq!(r.run(), RunExit::Halted(1000));
    }

    #[test]
    fn fork_continues_tick_identically_with_the_parent() {
        for kind in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
            let p = counting_program(1_500);
            let mut m = Machine::boot(small_config(kind), &p, NoopHooks).unwrap();
            assert!(m.run_to_tick(800).is_none());
            let mut f = m.fork_with(NoopHooks);
            assert_eq!(f.tick(), m.tick(), "{kind}");
            // The fork drops the derived predecode cache but nothing else:
            // both machines finish at the exact same tick and state.
            assert_eq!(
                f.stats().mem.predecode,
                gemfi_mem::PredecodeStats::default(),
                "{kind}: fork must start decode-cold"
            );
            assert_eq!(m.run(), RunExit::Halted(1500), "{kind}");
            assert_eq!(f.run(), RunExit::Halted(1500), "{kind}");
            assert_eq!(f.tick(), m.tick(), "{kind}: fork diverged in time");
            assert_eq!(f.instret(), m.instret(), "{kind}");
            assert_eq!(f.arch(), m.arch(), "{kind}");
        }
    }

    #[test]
    fn stats_surface_is_consistent() {
        let p = counting_program(300);
        let mut m = Machine::boot(small_config(CpuKind::InOrder), &p, NoopHooks).unwrap();
        m.run();
        let s = m.stats();
        assert!(s.instructions > 900);
        assert!(s.ticks >= s.instructions);
        assert!(s.branch_lookups >= 300);
        assert!(s.mem.l1i.accesses() > 0);
        assert!(s.ipc() > 0.0);
    }
}
