//! Superblock knob coverage of the fuzz machine space (PR 8).
//!
//! The knob rides its own auxiliary seed stream, so these tests pin three
//! things: (1) the axis is actually reachable in both positions, (2) the
//! main stream's draw order is untouched (committed seeds keep their
//! documented cases — enforced in the crate's unit tests), and (3) the
//! pinned boundary seed keeps exercising a fault that fires in a run that
//! also executed superblocks, with the knob architecturally invisible.

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_campaign::SplitMix64;
use gemfi_cpu::CpuKind;
use gemfi_fuzz::{gen_case_spec, gen_machine, gen_program, run_case};
use gemfi_sim::{Machine, RunExit};

/// Mirrors the harness drive loop: step over checkpoint-request pseudo-ops
/// (reachable by corrupted fetch words) up to a bound.
fn drive(machine: &mut Machine<GemFiEngine>) -> RunExit {
    for _ in 0..1_000 {
        match machine.run() {
            RunExit::CheckpointRequest => continue,
            exit => return exit,
        }
    }
    RunExit::Watchdog
}

#[test]
fn superblock_knob_is_reachable_in_both_positions() {
    let mut on = 0u32;
    let mut off = 0u32;
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let _ = gen_program(&mut rng);
        let config = gen_machine(seed, &mut rng);
        if config.mem.superblock {
            on += 1;
        } else {
            off += 1;
        }
    }
    assert!(on > 0 && off > 0, "superblock axis must be sampled both ways ({on} on, {off} off)");
}

/// Seed 459 is the pinned superblock-boundary case (see
/// `regression-seeds.txt`): an Atomic machine with superblocks enabled
/// whose instruction-timed fetch-skip fault fires mid-run — the dormant
/// sprint executes translated blocks up to the fault's event horizon,
/// falls back to per-instruction stepping exactly at the boundary,
/// injects, and must classify cleanly with the very same outcome the
/// knob-off machine produces.
const BOUNDARY_SEED: u64 = 459;

#[test]
fn pinned_boundary_seed_fires_a_fault_across_a_superblock_edge() {
    let mut rng = SplitMix64::new(BOUNDARY_SEED);
    let program = gen_program(&mut rng);
    let config = gen_machine(BOUNDARY_SEED, &mut rng);
    let spec = gen_case_spec(BOUNDARY_SEED, &mut rng);
    assert_eq!(config.cpu, CpuKind::Atomic, "pin drifted: boundary seed must draw Atomic");
    assert!(config.mem.superblock, "pin drifted: boundary seed must draw superblocks on");

    let run = |superblock: bool| {
        let mut config = config;
        config.mem.superblock = superblock;
        let engine = GemFiEngine::new(FaultConfig::from_specs(vec![spec]));
        let mut m = Machine::boot(config, &program, engine).expect("boots");
        let exit = drive(&mut m);
        let uops = m.mem().stats().superblock.uops_executed;
        let records = m.hooks().records().to_vec();
        (exit, m.out_words().to_vec(), m.instret(), m.tick(), uops, records)
    };

    let (exit_on, out_on, instret_on, tick_on, uops_on, recs_on) = run(true);
    let (exit_off, out_off, instret_off, tick_off, uops_off, recs_off) = run(false);

    // The boundary is real: superblocks executed AND the fault injected in
    // the same run.
    assert!(uops_on > 0, "pin drifted: no superblock uops executed");
    assert!(!recs_on.is_empty(), "pin drifted: the fault never fired");
    assert_eq!(uops_off, 0, "knob-off run must never touch superblocks");
    assert!(!recs_off.is_empty());

    // Architectural invisibility across the boundary: bit-identical ending,
    // and the injection log — tick, location, value transform — matches
    // record for record (a warm-state leak once shifted record ticks by a
    // few ticks while everything architectural still agreed).
    assert_eq!(exit_on, exit_off, "exit differs across the superblock knob");
    assert_eq!(out_on, out_off, "output differs across the superblock knob");
    assert_eq!(instret_on, instret_off, "instret differs across the superblock knob");
    assert_eq!(tick_on, tick_off, "tick differs across the superblock knob");
    assert_eq!(recs_on, recs_off, "injection records differ across the superblock knob");

    // And the case still classifies through the ordinary harness path.
    let case = run_case(BOUNDARY_SEED).expect("boundary seed must stay contained");
    assert_eq!(case.cpu, CpuKind::Atomic);
}
