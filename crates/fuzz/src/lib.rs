//! Differential fault fuzzing: the enforcement arm of the containment
//! contract (see `DESIGN.md`).
//!
//! The contract says that **no injected fault may panic the simulator**:
//! any state reachable by corrupting registers, fetched words, decode
//! selections, execute results, the PC, or memory transactions must
//! terminate as a [`RunExit`] — a trap, a halt, or the watchdog — never a
//! Rust panic and never a [`RunExit::SimError`]. This crate checks that
//! claim the only way it can be checked: by throwing the whole fault space
//! at the whole machine space and watching for escapes.
//!
//! One **case** is derived from a single 64-bit seed and covers:
//!
//! * a random (but always halting, fault-free) guest program;
//! * a random machine: any of the four CPU models × the predecode,
//!   copy-on-write, and dormancy-elision knobs;
//! * a random [`FaultSpec`]: all five stage queues, all behaviors
//!   (including the security-style skip / opcode-replacement /
//!   branch-inversion trio), cache data/tag/way lesions under every MBU
//!   spatial pattern, both timing units, and
//!   transient/intermittent/permanent occurrence classes.
//!
//! The case first runs the program fault-free **twice** and demands
//! byte-identical results (exit, output words, console, instruction count,
//! final tick) — the differential baseline. It then runs the faulty
//! configuration under [`catch_unwind`] and demands a classifiable
//! [`RunExit`]: every surviving run maps onto one of the paper's outcome
//! classes. A panic, a [`RunExit::SimError`], or a non-deterministic
//! fault-free replay is a harness **failure**, reported with the seed and
//! the rendered fault spec so the case replays from the command line:
//!
//! ```text
//! cargo run -p gemfi-fuzz -- --seed <seed> --cases 1
//! ```

use gemfi::spec::OCC_PERMANENT;
use gemfi::{
    CacheLevel, FaultBehavior, FaultConfig, FaultLocation, FaultSpec, FaultTiming, GemFiEngine,
    InjectionRecord, MbuPattern, MemTarget, Outcome,
};
use gemfi_asm::{Assembler, FReg, Program, Reg};
use gemfi_campaign::sampler::cache_geometry;
use gemfi_campaign::SplitMix64;
use gemfi_cpu::CpuKind;
use gemfi_isa::{IntReg, SpecialReg};
use gemfi_sim::{Machine, MachineConfig, RunExit};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tick budget per run. Generated programs finish in well under 100 k ticks
/// on every model; a corrupted run that spins past this bound becomes the
/// watchdog exit (→ *Crashed*), exactly like a campaign hang.
const CASE_MAX_TICKS: u64 = 3_000_000;

/// Bound on checkpoint-request pseudo-ops honoured per run. A corrupted
/// fetch word can decode into `fi_read_init_all`; each occurrence makes
/// progress, but a permanent fetch fault could produce an endless stream,
/// so the drive loop gives up (→ watchdog) after this many.
const MAX_CHECKPOINT_REQUESTS: u32 = 1_000;

/// What one fuzz case exercised and how it came out.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case seed (replays the whole case).
    pub seed: u64,
    /// CPU model of the faulty run.
    pub cpu: CpuKind,
    /// The injected fault.
    pub spec: FaultSpec,
    /// Paper outcome class of the faulty run.
    pub outcome: Outcome,
    /// Terminal exit of the faulty run (rendered).
    pub exit: String,
}

/// A containment violation (or harness-level defect) found by one case.
#[derive(Debug, Clone)]
pub enum CaseFailure {
    /// The simulator panicked — the contract's cardinal sin.
    Panicked {
        /// Panic payload message.
        message: String,
    },
    /// The run terminated as [`RunExit::SimError`]: the simulator kept
    /// control but admitted a broken internal invariant.
    SimError {
        /// Rendered invariant violation.
        error: String,
    },
    /// The run terminated in a state no paper outcome describes.
    Unclassifiable {
        /// Rendered exit.
        exit: String,
    },
    /// Two fault-free executions of the same program disagreed.
    NonDeterministic {
        /// What differed.
        detail: String,
    },
}

impl CaseFailure {
    /// Short machine-readable kind tag for the reproducer seed list.
    pub fn kind(&self) -> &'static str {
        match self {
            CaseFailure::Panicked { .. } => "panic",
            CaseFailure::SimError { .. } => "sim-error",
            CaseFailure::Unclassifiable { .. } => "unclassifiable",
            CaseFailure::NonDeterministic { .. } => "non-deterministic",
        }
    }

    /// Human-readable detail.
    pub fn detail(&self) -> &str {
        match self {
            CaseFailure::Panicked { message } => message,
            CaseFailure::SimError { error } => error,
            CaseFailure::Unclassifiable { exit } => exit,
            CaseFailure::NonDeterministic { detail } => detail,
        }
    }
}

/// One failed case with its reproduction handles.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The case seed.
    pub seed: u64,
    /// Rendered fault spec of the case.
    pub spec: String,
    /// CPU model of the case.
    pub cpu: CpuKind,
    /// What went wrong.
    pub failure: CaseFailure,
}

/// Aggregate of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Outcome histogram over the surviving cases ([`Outcome::ALL`] order).
    pub outcomes: [u64; 6],
    /// Containment violations, with reproduction handles.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Renders the outcome histogram as `name:count` pairs.
    pub fn histogram(&self) -> String {
        Outcome::ALL
            .iter()
            .zip(self.outcomes.iter())
            .map(|(o, n)| format!("{}:{n}", o.name()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Everything a fault-free execution leaves behind that a replay must
/// reproduce byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FreeRun {
    exit: RunExit,
    out_words: Vec<u64>,
    console: Vec<u8>,
    instret: u64,
    tick: u64,
}

// ---- generation -------------------------------------------------------------

/// Boundary values a `Set`/`Xor` behavior draws from (alongside fully
/// random words): the corners where address arithmetic, sign handling, and
/// alignment checks live.
const INTERESTING: [u64; 10] = [
    0,
    1,
    7,
    0x7fff_ffff_ffff_ffff,
    0x8000_0000_0000_0000,
    u64::MAX,
    u64::MAX - 7,
    0x0001_0000,
    0x00ff_ff01,
    0xdead_beef_dead_beef,
];

fn corruption_value(rng: &mut SplitMix64) -> u64 {
    if rng.coin() {
        INTERESTING[rng.below(INTERESTING.len() as u64) as usize]
    } else {
        rng.next_u64()
    }
}

/// Scratch registers the generated program computes in. `R7` is the data
/// base pointer and `R9` the loop counter; PAL argument registers are used
/// only in the postlude.
const SCRATCH: [IntReg; 6] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6];

fn pick_scratch(rng: &mut SplitMix64) -> IntReg {
    SCRATCH[rng.below(SCRATCH.len() as u64) as usize]
}

/// Generates a random guest program that always halts cleanly when run
/// fault-free: a seeded register mix, a bounded counted loop of random ALU
/// and memory operations over a private data buffer, and a postlude that
/// publishes two result registers through the binary output channel.
pub fn gen_program(rng: &mut SplitMix64) -> Program {
    let mut a = Assembler::new();
    a.fi_activate(0);
    for (i, r) in SCRATCH.iter().enumerate() {
        a.li(*r, rng.next_u64() as i64 >> (i as u32 * 7));
    }
    a.la(Reg::R7, "buf");
    let iters = rng.range_inclusive(4, 24) as i64;
    a.li(Reg::R9, iters);
    a.label("loop");
    let body_ops = rng.range_inclusive(3, 10);
    for _ in 0..body_ops {
        emit_random_op(&mut a, rng);
    }
    a.subq_lit(Reg::R9, 1, Reg::R9);
    a.bne(Reg::R9, "loop");
    // Publish two accumulators so silent corruption is visible output.
    a.mov(Reg::R1, Reg::A0);
    a.write_word();
    a.mov(Reg::R2, Reg::A0);
    a.write_word();
    a.exit(0);
    a.dsym("buf");
    let data: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
    a.data_u64(&data);
    #[allow(clippy::expect_used)] // the generator only emits resolvable labels
    a.finish().expect("generated program assembles")
}

fn emit_random_op(a: &mut Assembler, rng: &mut SplitMix64) {
    let ra = pick_scratch(rng);
    let rb = pick_scratch(rng);
    let rc = pick_scratch(rng);
    match rng.below(12) {
        0 => a.addq(ra, rb, rc),
        1 => a.subq(ra, rb, rc),
        2 => a.mulq(ra, rb, rc),
        3 => a.xor(ra, rb, rc),
        4 => a.and(ra, rb, rc),
        5 => a.bis(ra, rb, rc),
        6 => a.cmple(ra, rb, rc),
        7 => a.sll_lit(ra, rng.below(63) as u8, rc),
        8 => a.srl_lit(ra, rng.below(63) as u8, rc),
        // A store followed (program-order-soon) by loads keeps the O3
        // load/store queue honest under corrupted effective addresses.
        9 => a.stq(ra, (rng.below(8) * 8) as i16, Reg::R7),
        10 => a.ldq(rc, (rng.below(8) * 8) as i16, Reg::R7),
        // A short FP round-trip so floating-point state is live too.
        _ => a.itoft(ra, FReg::F1).addt(FReg::F1, FReg::F2, FReg::F2).ftoit(FReg::F2, rc),
    };
}

/// Samples the full fault space of the paper: all five stage queues, all
/// five behaviors, both timing units, transient/intermittent/permanent.
pub fn gen_spec(rng: &mut SplitMix64) -> FaultSpec {
    let location = match rng.below(8) {
        0 => FaultLocation::IntReg { core: 0, reg: rng.below(32) as u8 },
        1 => FaultLocation::FpReg { core: 0, reg: rng.below(32) as u8 },
        2 => FaultLocation::SpecialReg {
            core: 0,
            reg: SpecialReg::ALL[rng.below(SpecialReg::ALL.len() as u64) as usize],
        },
        3 => FaultLocation::Fetch { core: 0 },
        4 => FaultLocation::Decode { core: 0 },
        5 => FaultLocation::Execute { core: 0 },
        6 => FaultLocation::Pc { core: 0 },
        _ => FaultLocation::Mem {
            core: 0,
            target: [MemTarget::Load, MemTarget::Store, MemTarget::Any][rng.below(3) as usize],
        },
    };
    let behavior = match rng.below(5) {
        0 => FaultBehavior::Set(corruption_value(rng)),
        1 => FaultBehavior::Xor(corruption_value(rng)),
        2 => FaultBehavior::Flip(rng.below(64) as u8),
        3 => FaultBehavior::AllZero,
        _ => FaultBehavior::AllOne,
    };
    // Windows sized to the generated programs (tens to a few hundred
    // instructions) so most faults actually fire inside the run; the tail
    // that lands past termination exercises the never-fires path.
    let timing = if rng.coin() {
        FaultTiming::Instructions(rng.below(250))
    } else {
        FaultTiming::Ticks(rng.below(2_000))
    };
    let occurrences = match rng.below(3) {
        0 => 1,
        1 => rng.range_inclusive(2, 16),
        _ => OCC_PERMANENT,
    };
    FaultSpec { location, thread: 0, timing, behavior, occurrences }
}

/// Stream-separation constant for the expanded fault axes. Each case draws
/// its program, machine, and base spec from the main seed stream exactly as
/// it always has; a second stream seeded with `seed ^ NEW_AXES_STREAM` then
/// decides whether the case swaps in a cache-hierarchy or security-style
/// spec instead. Keeping the main stream's draw count fixed means every
/// pre-expansion seed — including the committed regression list — replays
/// its original case bit-identically.
const NEW_AXES_STREAM: u64 = 0x6361_6368_655f_6c73;

/// Samples the memory-hierarchy fault axis: data/tag/way targets across all
/// three cache arrays, every MBU spatial pattern, and transient through
/// stuck-at persistence.
pub fn gen_cache_spec(rng: &mut SplitMix64) -> FaultSpec {
    let level = [CacheLevel::L1I, CacheLevel::L1D, CacheLevel::L2][rng.below(3) as usize];
    let (sets, ways) = cache_geometry(level);
    let set = rng.below(sets) as u32;
    let way = rng.below(u64::from(ways)) as u32;
    let pattern = match rng.below(4) {
        0 => MbuPattern::Single,
        1 => MbuPattern::Adjacent { bit: rng.below(64) as u8, width: 2 + rng.below(3) as u8 },
        2 => MbuPattern::Row(rng.below(8) as u8),
        _ => MbuPattern::Column(rng.below(8) as u8),
    };
    let location = match rng.below(3) {
        0 => FaultLocation::CacheData { core: 0, level, set, way, pattern },
        1 => FaultLocation::CacheTag { core: 0, level, set, way },
        _ => FaultLocation::CacheWay { core: 0, level, way, pattern },
    };
    let behavior = match rng.below(5) {
        0 => FaultBehavior::Set(corruption_value(rng)),
        1 => FaultBehavior::Xor(corruption_value(rng)),
        2 => FaultBehavior::Flip(rng.below(64) as u8),
        3 => FaultBehavior::AllZero,
        _ => FaultBehavior::AllOne,
    };
    let timing = if rng.coin() {
        FaultTiming::Instructions(rng.below(250))
    } else {
        FaultTiming::Ticks(rng.below(2_000))
    };
    // For cache locations `occurrences` is lesion lifetime, not re-fire
    // count: 1 = transient upset, permanent = stuck-at cell.
    let occurrences = match rng.below(3) {
        0 => 1,
        1 => rng.range_inclusive(2, 16),
        _ => OCC_PERMANENT,
    };
    FaultSpec { location, thread: 0, timing, behavior, occurrences }
}

/// Samples the security-style behavior axis: instruction skip, opcode
/// replacement, and branch-condition inversion, each bound to the only
/// stage that accepts it.
pub fn gen_security_spec(rng: &mut SplitMix64) -> FaultSpec {
    let (location, behavior) = match rng.below(3) {
        0 => (FaultLocation::Fetch { core: 0 }, FaultBehavior::Skip),
        1 => (FaultLocation::Fetch { core: 0 }, FaultBehavior::Opcode(rng.below(64) as u8)),
        _ => (FaultLocation::Execute { core: 0 }, FaultBehavior::InvertBranch),
    };
    let timing = if rng.coin() {
        FaultTiming::Instructions(rng.below(250))
    } else {
        FaultTiming::Ticks(rng.below(2_000))
    };
    let occurrences = match rng.below(3) {
        0 => 1,
        1 => rng.range_inclusive(2, 16),
        _ => OCC_PERMANENT,
    };
    FaultSpec { location, thread: 0, timing, behavior, occurrences }
}

/// Draws the fault spec for case `seed`: the base spec always comes off the
/// main stream (preserving the seed contract), then the auxiliary stream
/// picks which axis the case actually exercises — base, cache, or security,
/// one third each.
pub fn gen_case_spec(seed: u64, rng: &mut SplitMix64) -> FaultSpec {
    let base = gen_spec(rng);
    let mut aux = SplitMix64::new(seed ^ NEW_AXES_STREAM);
    match aux.below(3) {
        0 => base,
        1 => gen_cache_spec(&mut aux),
        _ => gen_security_spec(&mut aux),
    }
}

/// Stream-separation constant for the superblock machine knob (PR 8).
/// Like [`NEW_AXES_STREAM`], it keeps the main stream's draw count frozen:
/// the superblock coin comes off its own stream seeded with
/// `seed ^ SUPERBLOCK_STREAM`, so every committed seed still draws its
/// documented program, machine, and fault spec bit-identically.
const SUPERBLOCK_STREAM: u64 = 0x7375_7065_7262_6c6b;

/// Samples the machine space: every CPU model crossed with the predecode,
/// copy-on-write, dormancy-elision, and superblock knobs.
pub fn gen_machine(seed: u64, rng: &mut SplitMix64) -> MachineConfig {
    // Draw order is part of the seed contract: cpu, predecode, cow, elide.
    let cpu =
        [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3][rng.below(4) as usize];
    let predecode = rng.coin();
    let cow = rng.coin();
    let elide = rng.coin();
    // The superblock knob rides its own stream (see SUPERBLOCK_STREAM).
    let superblock = SplitMix64::new(seed ^ SUPERBLOCK_STREAM).coin();
    let mut config =
        MachineConfig { cpu, elide, max_ticks: CASE_MAX_TICKS, ..MachineConfig::default() };
    config.mem.predecode = predecode;
    config.mem.cow = cow;
    config.mem.superblock = superblock;
    config
}

// ---- execution --------------------------------------------------------------

/// Runs a machine to a terminal exit, stepping over checkpoint-request
/// pseudo-ops (reachable by corrupted fetch words).
fn drive(machine: &mut Machine<GemFiEngine>) -> RunExit {
    for _ in 0..MAX_CHECKPOINT_REQUESTS {
        match machine.run() {
            RunExit::CheckpointRequest => continue,
            exit => return exit,
        }
    }
    RunExit::Watchdog
}

fn run_fault_free(program: &Program, config: MachineConfig) -> Result<FreeRun, String> {
    let engine = GemFiEngine::new(FaultConfig::empty());
    let mut machine =
        Machine::boot(config, program, engine).map_err(|t| format!("boot failed: {t}"))?;
    let exit = drive(&mut machine);
    Ok(FreeRun {
        exit,
        out_words: machine.out_words().to_vec(),
        console: machine.console().to_vec(),
        instret: machine.instret(),
        tick: machine.tick(),
    })
}

fn run_faulty(
    program: &Program,
    config: MachineConfig,
    spec: FaultSpec,
) -> Result<(RunExit, Vec<u64>, Vec<InjectionRecord>), String> {
    let engine = GemFiEngine::new(FaultConfig::from_specs(vec![spec]));
    let mut machine =
        Machine::boot(config, program, engine).map_err(|t| format!("boot failed: {t}"))?;
    let exit = drive(&mut machine);
    let out = machine.out_words().to_vec();
    let records = machine.hooks().records().to_vec();
    Ok((exit, out, records))
}

/// Maps a terminal exit onto a paper outcome, or `None` when the exit is
/// outside the contract (the case then fails).
fn classify_exit(
    exit: &RunExit,
    golden: &FreeRun,
    out_words: &[u64],
    records: &[InjectionRecord],
) -> Option<Outcome> {
    match exit {
        RunExit::Trapped(_) | RunExit::Watchdog => Some(Outcome::Crashed),
        RunExit::Halted(code) if *code != 0 => Some(Outcome::Crashed),
        RunExit::Halted(_) => {
            if out_words == golden.out_words {
                if records.iter().any(InjectionRecord::propagated) {
                    Some(Outcome::StrictlyCorrect)
                } else {
                    Some(Outcome::NonPropagated)
                }
            } else {
                // Random programs define no quality margin, so any output
                // deviation is silent data corruption.
                Some(Outcome::Sdc)
            }
        }
        RunExit::SimError(_) | RunExit::CheckpointRequest => None,
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one complete case from its seed.
pub fn run_case(seed: u64) -> Result<CaseReport, FuzzFailure> {
    let mut rng = SplitMix64::new(seed);
    let program = gen_program(&mut rng);
    let config = gen_machine(seed, &mut rng);
    let spec = gen_case_spec(seed, &mut rng);
    let fail = |failure: CaseFailure| FuzzFailure {
        seed,
        spec: spec.to_string(),
        cpu: config.cpu,
        failure,
    };

    // Differential baseline: the same fault-free program twice, demanding
    // byte-identical results. Catches state leaking across runs and
    // non-determinism that would poison every classification downstream.
    let golden = match catch_unwind(AssertUnwindSafe(|| run_fault_free(&program, config))) {
        Err(p) => {
            return Err(fail(CaseFailure::Panicked {
                message: format!("fault-free run: {}", panic_message(&p)),
            }))
        }
        Ok(Err(e)) => return Err(fail(CaseFailure::Unclassifiable { exit: e })),
        Ok(Ok(run)) => run,
    };
    if golden.exit != RunExit::Halted(0) {
        return Err(fail(CaseFailure::Unclassifiable {
            exit: format!("fault-free run did not halt cleanly: {}", golden.exit),
        }));
    }
    match catch_unwind(AssertUnwindSafe(|| run_fault_free(&program, config))) {
        Err(p) => {
            return Err(fail(CaseFailure::Panicked {
                message: format!("fault-free replay: {}", panic_message(&p)),
            }))
        }
        Ok(Err(e)) => return Err(fail(CaseFailure::Unclassifiable { exit: e })),
        Ok(Ok(replay)) => {
            if replay != golden {
                return Err(fail(CaseFailure::NonDeterministic {
                    detail: format!(
                        "fault-free replay diverged: first ({}, {} words, instret {}, tick {}) \
                         vs replay ({}, {} words, instret {}, tick {})",
                        golden.exit,
                        golden.out_words.len(),
                        golden.instret,
                        golden.tick,
                        replay.exit,
                        replay.out_words.len(),
                        replay.instret,
                        replay.tick,
                    ),
                }));
            }
        }
    }

    // The faulty run: whatever the fault does, the simulator must keep
    // control and land on a classifiable exit.
    let (exit, out_words, records) =
        match catch_unwind(AssertUnwindSafe(|| run_faulty(&program, config, spec))) {
            Err(p) => return Err(fail(CaseFailure::Panicked { message: panic_message(&p) })),
            Ok(Err(e)) => return Err(fail(CaseFailure::Unclassifiable { exit: e })),
            Ok(Ok(r)) => r,
        };
    if let RunExit::SimError(e) = exit {
        return Err(fail(CaseFailure::SimError { error: e.to_string() }));
    }
    let Some(outcome) = classify_exit(&exit, &golden, &out_words, &records) else {
        return Err(fail(CaseFailure::Unclassifiable { exit: exit.to_string() }));
    };
    Ok(CaseReport { seed, cpu: config.cpu, spec, outcome, exit: exit.to_string() })
}

/// Runs case seeds `base_seed`, `base_seed + 1`, … and aggregates the
/// report. Sequential seeding is deliberate: SplitMix64 decorrelates
/// consecutive seeds by construction, and it makes every reported case seed
/// replayable verbatim as `--seed <seed> --cases 1`.
pub fn fuzz(base_seed: u64, cases: u64) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cases {
        let seed = base_seed.wrapping_add(i);
        report.cases += 1;
        match run_case(seed) {
            Ok(case) => {
                let slot = Outcome::ALL
                    .iter()
                    .position(|o| *o == case.outcome)
                    .unwrap_or(Outcome::ALL.len() - 1);
                report.outcomes[slot] += 1;
            }
            Err(failure) => report.failures.push(failure),
        }
    }
    report
}

/// Parses a reproducer seed list: one decimal seed per line, `#` comments
/// and blank lines ignored.
pub fn parse_seed_list(text: &str) -> Vec<u64> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next())
        .filter_map(|tok| tok.parse().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_halt_cleanly_on_every_model() {
        for seed in 0..12 {
            let mut rng = SplitMix64::new(seed);
            let program = gen_program(&mut rng);
            for cpu in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
                let config = MachineConfig { cpu, max_ticks: CASE_MAX_TICKS, ..Default::default() };
                let run = run_fault_free(&program, config).unwrap();
                assert_eq!(run.exit, RunExit::Halted(0), "seed {seed} on {cpu}");
                assert_eq!(run.out_words.len(), 2, "seed {seed} on {cpu}");
            }
        }
    }

    #[test]
    fn spec_generation_reaches_every_stage_and_occurrence_class() {
        let mut rng = SplitMix64::new(7);
        let mut stages = std::collections::HashSet::new();
        let mut transient = false;
        let mut intermittent = false;
        let mut permanent = false;
        for _ in 0..300 {
            let spec = gen_spec(&mut rng);
            stages.insert(spec.stage().index());
            match spec.occurrences {
                1 => transient = true,
                OCC_PERMANENT => permanent = true,
                _ => intermittent = true,
            }
        }
        assert_eq!(stages.len(), 5, "all five stage queues sampled");
        assert!(transient && intermittent && permanent);
    }

    /// The spec case `seed` will inject, without running anything.
    fn spec_for_seed(seed: u64) -> FaultSpec {
        let mut rng = SplitMix64::new(seed);
        let _ = gen_program(&mut rng);
        let _ = gen_machine(seed, &mut rng);
        gen_case_spec(seed, &mut rng)
    }

    #[test]
    fn extended_axes_are_reachable_and_parse_back() {
        let mut cache = std::collections::HashSet::new();
        let mut security = std::collections::HashSet::new();
        for seed in 0..400u64 {
            let spec = spec_for_seed(seed);
            match spec.location {
                FaultLocation::CacheData { .. } => cache.insert("data"),
                FaultLocation::CacheTag { .. } => cache.insert("tag"),
                FaultLocation::CacheWay { .. } => cache.insert("way"),
                _ => match spec.behavior {
                    FaultBehavior::Skip => security.insert("skip"),
                    FaultBehavior::Opcode(_) => security.insert("opcode"),
                    FaultBehavior::InvertBranch => security.insert("invert"),
                    _ => continue,
                },
            };
            // Every generated spec must survive the Listing-1 round trip —
            // i.e. stay reachable from `gemfi_run` input syntax.
            let parsed: FaultConfig = spec
                .to_string()
                .parse()
                .unwrap_or_else(|e| panic!("seed {seed}: `{spec}` does not re-parse: {e:?}"));
            assert_eq!(parsed.faults(), &[spec], "seed {seed} round trip");
        }
        assert_eq!(cache.len(), 3, "cache targets sampled: {cache:?}");
        assert_eq!(security.len(), 3, "security behaviors sampled: {security:?}");
    }

    #[test]
    fn committed_seeds_replay_their_documented_specs() {
        // The regression list's value is that each seed replays a *known*
        // case: the panic reproducer must predate the cache/security axes
        // (the auxiliary stream leaves its base spec untouched), and each
        // family pin must keep drawing its documented fault. Any drift in
        // the generators or the stream constant trips this first.
        let pinned: &[(u64, &str)] = &[
            (
                31914,
                "ExecutionStageInjectedFault Inst:53 AllOne Threadid:0 occ:perm \
                 system.cpu0 execute",
            ),
            (
                3,
                "CacheInjectedFault Inst:248 Flip:3 Threadid:0 occ:1 system.cpu0 \
                 l1d data set:218 way:0 mbu:col:7",
            ),
            (
                0,
                "CacheInjectedFault Inst:225 Set:0x10000 Threadid:0 occ:perm \
                 system.cpu0 l1d tag set:98 way:1",
            ),
            (
                935,
                "CacheInjectedFault Inst:71 AllOne Threadid:0 occ:1 system.cpu0 \
                 l1i way:0 mbu:single",
            ),
            (
                2,
                "FetchedInstructionInjectedFault Inst:214 Skip Threadid:0 occ:11 system.cpu0 fetch",
            ),
            (
                17,
                "FetchedInstructionInjectedFault Inst:50 Opcode:0x1f Threadid:0 occ:perm \
                 system.cpu0 fetch",
            ),
            (
                18,
                "ExecutionStageInjectedFault Inst:146 InvertBranch Threadid:0 occ:perm \
                 system.cpu0 execute",
            ),
        ];
        for (seed, expected) in pinned {
            assert_eq!(&spec_for_seed(*seed).to_string(), expected, "seed {seed}");
        }
    }

    #[test]
    fn cases_are_reproducible_from_their_seed() {
        let first = run_case(0xfeed_beef).expect("case survives");
        let second = run_case(0xfeed_beef).expect("case survives");
        assert_eq!(first.outcome, second.outcome);
        assert_eq!(first.exit, second.exit);
        assert_eq!(first.spec, second.spec);
    }

    #[test]
    fn regression_seeds_stay_contained() {
        // Each committed seed once panicked the simulator (see the file's
        // comments); all must now classify cleanly on every replay.
        let seeds = parse_seed_list(include_str!("../regression-seeds.txt"));
        assert!(!seeds.is_empty(), "regression list must not be empty");
        for seed in seeds {
            let case = run_case(seed).unwrap_or_else(|f| {
                panic!("regression seed {seed} violated containment again: {f:?}")
            });
            assert!(Outcome::ALL.contains(&case.outcome));
        }
    }

    #[test]
    fn seed_list_parser_skips_comments_and_annotations() {
        let text = "# header\n\n123 panic o3\n456\n  # tail\n789 sdc\n";
        assert_eq!(parse_seed_list(text), vec![123, 456, 789]);
    }
}
