//! Command-line driver for the differential fault fuzzer.
//!
//! ```text
//! gemfi-fuzz [--cases N] [--seed S] [--out PATH]
//! ```
//!
//! Runs `N` cases derived from base seed `S`, prints the outcome histogram,
//! and exits non-zero if any case violated the containment contract. On
//! failure, `--out PATH` writes a reproducer seed list (one seed per line,
//! annotated with the failure kind and fault spec) that
//! [`gemfi_fuzz::parse_seed_list`] reads back.

use std::process::ExitCode;

struct Args {
    cases: u64,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { cases: 500, seed: 0x9e37_79b9, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--cases" => {
                args.cases = value("--cases")?.parse().map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                return Err("usage: gemfi-fuzz [--cases N] [--seed S] [--out PATH]".into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = gemfi_fuzz::fuzz(args.seed, args.cases);
    println!("fuzzed {} cases (base seed {:#x}): {}", report.cases, args.seed, report.histogram());

    if report.failures.is_empty() {
        println!("containment holds: zero panics, zero simulator errors");
        return ExitCode::SUCCESS;
    }

    eprintln!("{} containment violation(s):", report.failures.len());
    let mut seed_list = String::from(
        "# gemfi-fuzz reproducer seeds — replay with:\n\
         #   cargo run -p gemfi-fuzz -- --seed <seed> --cases 1\n",
    );
    for f in &report.failures {
        eprintln!(
            "  seed {} [{}] {}: {} ({})",
            f.seed,
            f.cpu,
            f.failure.kind(),
            f.failure.detail(),
            f.spec
        );
        seed_list.push_str(&format!("{} {} {} # {}\n", f.seed, f.failure.kind(), f.cpu, f.spec));
    }
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, seed_list) {
            eprintln!("could not write reproducer list to {path}: {e}");
        } else {
            eprintln!("reproducer seed list written to {path}");
        }
    }
    ExitCode::FAILURE
}
