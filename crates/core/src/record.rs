//! Injection records for post-mortem correlation.
//!
//! "When injecting a fault we print information on the affected assembly
//! instruction. This information is used post-mortem to correlate, either
//! analytically or statistically, the fault with the simulation result."
//! (Sec. IV-B.)

use crate::spec::{FaultLocation, Stage};
use gemfi_isa::RegRef;
use std::fmt;

/// One fault actually injected during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Simulation tick of the injection.
    pub tick: u64,
    /// Stage at which the corruption was applied.
    pub stage: Stage,
    /// The fault location.
    pub location: FaultLocation,
    /// Thread id the fault targeted.
    pub thread: u32,
    /// PC of the affected instruction (0 for boundary register faults).
    pub pc: u64,
    /// Disassembly of the affected instruction, when one exists.
    pub instr: Option<String>,
    /// Value before corruption.
    pub before: u64,
    /// Value after corruption.
    pub after: u64,
    /// For register faults: whether the corrupted location was read before
    /// being overwritten (the *propagation* monitor feeding the paper's
    /// non-propagated outcome class).
    pub consumed: bool,
    /// For register faults: whether the corrupted location was overwritten
    /// before any read.
    pub overwritten: bool,
}

impl InjectionRecord {
    /// Whether the fault visibly changed the value.
    pub fn changed_value(&self) -> bool {
        self.before != self.after
    }

    /// Whether this fault may have propagated into execution. Register
    /// faults propagate only if consumed; other stages corrupt values
    /// already in flight.
    pub fn propagated(&self) -> bool {
        if !self.changed_value() {
            return false;
        }
        match self.stage {
            Stage::Register => self.consumed,
            _ => true,
        }
    }

    /// The register watched for consumption, if this is a register fault.
    pub fn watched_reg(&self) -> Option<RegRef> {
        match self.location {
            FaultLocation::IntReg { reg, .. } => {
                Some(RegRef::Int(gemfi_isa::IntReg::from_bits(reg as u32)))
            }
            FaultLocation::FpReg { reg, .. } => {
                Some(RegRef::Fp(gemfi_isa::FpReg::from_bits(reg as u32)))
            }
            _ => None,
        }
    }
}

impl fmt::Display for InjectionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tick {} [{}] {}: {:#x} -> {:#x}",
            self.tick, self.stage, self.location, self.before, self.after
        )?;
        if let Some(i) = &self.instr {
            write!(f, " at pc {:#x} `{}`", self.pc, i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MemTarget;

    fn record(stage: Stage, location: FaultLocation) -> InjectionRecord {
        InjectionRecord {
            tick: 10,
            stage,
            location,
            thread: 0,
            pc: 0x1_0000,
            instr: Some("addq r1, r2, r3".into()),
            before: 1,
            after: 3,
            consumed: false,
            overwritten: false,
        }
    }

    #[test]
    fn register_faults_propagate_only_if_consumed() {
        let mut r = record(Stage::Register, FaultLocation::IntReg { core: 0, reg: 1 });
        assert!(!r.propagated());
        r.consumed = true;
        assert!(r.propagated());
    }

    #[test]
    fn inflight_faults_propagate_when_value_changed() {
        let r = record(Stage::Memory, FaultLocation::Mem { core: 0, target: MemTarget::Load });
        assert!(r.propagated());
        let unchanged = InjectionRecord { after: 1, ..r };
        assert!(!unchanged.propagated());
    }

    #[test]
    fn display_mentions_the_instruction() {
        let r = record(Stage::Execute, FaultLocation::Execute { core: 0 });
        let s = r.to_string();
        assert!(s.contains("execute"));
        assert!(s.contains("addq"));
    }
}
