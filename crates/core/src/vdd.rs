//! Supply-voltage → error-rate model (the paper's future-work direction).
//!
//! Sec. VII: "we plan to enhance it with realistic fault models, associating
//! the supply voltage (Vdd) with the error rate in different system
//! components. Our goal is to study the limits of aggressively reducing
//! power consumption at the expense of correctness."
//!
//! The model here is the standard exponential low-voltage failure model
//! used in voltage-scaling studies: per-bit, per-cycle upset probability
//! grows exponentially as Vdd approaches the transistor threshold:
//!
//! ```text
//! p(vdd) = p_nom · exp(-k · (vdd − v_min) / (v_nom − v_min))
//! ```
//!
//! clamped to 1.0 below `v_min`. Campaign code combines this with a fault
//! sampler to produce fault configurations whose density follows the
//! voltage, and with the quadratic dynamic-power model to expose the
//! power-vs-correctness trade-off.

/// Exponential Vdd → bit-upset-rate model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VddModel {
    /// Nominal supply voltage (error rate is `p_nom` here).
    pub v_nom: f64,
    /// Minimum functional voltage (error probability 1 per bit-cycle).
    pub v_min: f64,
    /// Per-bit per-cycle upset probability at `v_nom`.
    pub p_nom: f64,
    /// Exponential steepness.
    pub k: f64,
}

impl VddModel {
    /// A model calibrated to a 1.0 V nominal / 0.5 V minimum process with a
    /// vanishing nominal error rate.
    pub fn new() -> VddModel {
        VddModel { v_nom: 1.0, v_min: 0.5, p_nom: 1e-12, k: 25.0 }
    }

    /// Per-bit per-cycle upset probability at `vdd`.
    ///
    /// Monotonically non-increasing in `vdd`; clamps to 1.0 at/below
    /// `v_min`.
    pub fn upset_probability(&self, vdd: f64) -> f64 {
        if vdd <= self.v_min {
            return 1.0;
        }
        let x = (vdd - self.v_min) / (self.v_nom - self.v_min);
        (self.p_nom * (self.k * (1.0 - x)).exp()).min(1.0)
    }

    /// Expected number of upsets over `bits` state bits and `cycles` cycles.
    pub fn expected_upsets(&self, vdd: f64, bits: u64, cycles: u64) -> f64 {
        self.upset_probability(vdd) * bits as f64 * cycles as f64
    }

    /// Relative dynamic power at `vdd` (P ∝ V²; frequency held constant),
    /// normalized to `v_nom`.
    pub fn relative_power(&self, vdd: f64) -> f64 {
        (vdd / self.v_nom).powi(2)
    }
}

impl Default for VddModel {
    fn default() -> VddModel {
        VddModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_monotone_decreasing_in_vdd() {
        let m = VddModel::new();
        let mut last = f64::INFINITY;
        for i in 0..=20 {
            let vdd = 0.5 + i as f64 * 0.025;
            let p = m.upset_probability(vdd);
            assert!(p <= last, "p({vdd}) = {p} > {last}");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn nominal_voltage_has_nominal_rate() {
        let m = VddModel::new();
        let p = m.upset_probability(m.v_nom);
        assert!((p - m.p_nom).abs() / m.p_nom < 1e-9);
    }

    #[test]
    fn below_vmin_everything_breaks() {
        let m = VddModel::new();
        assert_eq!(m.upset_probability(0.3), 1.0);
        assert_eq!(m.upset_probability(m.v_min), 1.0);
    }

    #[test]
    fn expected_upsets_scale_linearly() {
        let m = VddModel::new();
        let one = m.expected_upsets(0.7, 64, 1_000_000);
        let two = m.expected_upsets(0.7, 128, 1_000_000);
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_is_quadratic() {
        let m = VddModel::new();
        assert!((m.relative_power(1.0) - 1.0).abs() < 1e-12);
        assert!((m.relative_power(0.5) - 0.25).abs() < 1e-12);
    }
}
