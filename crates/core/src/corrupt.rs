//! Applying fault behaviours to values.

use crate::spec::FaultBehavior;

/// Applies `behavior` to `value`, confined to the low `width` bits (32 for
/// instruction words, 64 for registers and data). Bits above `width` are
/// preserved.
pub fn apply(behavior: FaultBehavior, value: u64, width: u8) -> u64 {
    let mask: u64 = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
    let corrupted = match behavior {
        FaultBehavior::Set(v) => v,
        FaultBehavior::Xor(m) => value ^ m,
        FaultBehavior::Flip(bit) => value ^ (1u64 << (bit as u32 % width.max(1) as u32)),
        FaultBehavior::AllZero => 0,
        FaultBehavior::AllOne => u64::MAX,
        // Opcode replacement rewrites the top 6 bits of the width window —
        // the Alpha opcode field for 32-bit instruction words — leaving the
        // operand fields intact.
        FaultBehavior::Opcode(op) => {
            if width < 6 {
                value
            } else {
                let shift = u32::from(width) - 6;
                (value & !(0x3fu64 << shift)) | (u64::from(op & 0x3f) << shift)
            }
        }
        // Skip and InvertBranch are control-flow behaviors, not value
        // transforms: applied to a value (programmatic misuse) they are
        // identity, keeping the fault contained.
        FaultBehavior::Skip | FaultBehavior::InvertBranch => value,
    };
    (value & !mask) | (corrupted & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive_and_width_confined() {
        let v = 0xdead_beef_u64;
        for bit in 0..32 {
            let f = apply(FaultBehavior::Flip(bit), v, 32);
            assert_ne!(f, v);
            assert_eq!(apply(FaultBehavior::Flip(bit), f, 32), v);
        }
        // A bit index beyond the width wraps into the word.
        let f = apply(FaultBehavior::Flip(35), v, 32);
        assert_eq!(f, v ^ (1 << 3));
    }

    #[test]
    fn set_xor_allzero_allone() {
        assert_eq!(apply(FaultBehavior::Set(0x12), 0xff, 64), 0x12);
        assert_eq!(apply(FaultBehavior::Xor(0x0f), 0xff, 64), 0xf0);
        assert_eq!(apply(FaultBehavior::AllZero, u64::MAX, 64), 0);
        assert_eq!(apply(FaultBehavior::AllOne, 0, 64), u64::MAX);
    }

    #[test]
    fn opcode_replaces_the_top_six_bits_of_the_window() {
        // 32-bit instruction word: the Alpha opcode field is bits 26–31.
        let word = 0xdead_beef_u64;
        let f = apply(FaultBehavior::Opcode(0x15), word, 32);
        assert_eq!(f >> 26 & 0x3f, 0x15);
        assert_eq!(f & 0x03ff_ffff, word & 0x03ff_ffff, "operand fields intact");
        // High bits above the window are preserved, as for every behavior.
        let tagged = 0xaaaa_0000_dead_beef_u64;
        let f = apply(FaultBehavior::Opcode(0), tagged, 32);
        assert_eq!(f >> 32, tagged >> 32);
        // Degenerate widths are identity, not a shift panic.
        assert_eq!(apply(FaultBehavior::Opcode(0x3f), 0b1010, 4), 0b1010);
    }

    #[test]
    fn control_flow_behaviors_are_identity_on_values() {
        for b in [FaultBehavior::Skip, FaultBehavior::InvertBranch] {
            assert_eq!(apply(b, 0xdead_beef, 32), 0xdead_beef);
            assert_eq!(apply(b, u64::MAX, 64), u64::MAX);
        }
    }

    #[test]
    fn high_bits_preserved_for_narrow_widths() {
        let v = 0xaaaa_bbbb_cccc_dddd;
        let f = apply(FaultBehavior::AllOne, v, 32);
        assert_eq!(f, 0xaaaa_bbbb_ffff_ffff);
        let f = apply(FaultBehavior::AllZero, v, 32);
        assert_eq!(f, 0xaaaa_bbbb_0000_0000);
    }
}
