//! Fault specifications: Location × Thread × Time × Behavior (Sec. III-A).

use gemfi_isa::SpecialReg;
use std::fmt;

/// Which memory transactions a memory-stage fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTarget {
    /// Loaded values only.
    Load,
    /// Stored values only.
    Store,
    /// Either direction.
    Any,
}

impl fmt::Display for MemTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemTarget::Load => write!(f, "load"),
            MemTarget::Store => write!(f, "store"),
            MemTarget::Any => write!(f, "any"),
        }
    }
}

/// The micro-architectural fault location (Sec. III-A-1).
///
/// Every variant names a core (GemFI's `system.cpuN` syntax); the supported
/// module set matches the paper: registers (integer, floating point,
/// special purpose), the fetched instruction, the selection of read/write
/// registers during decoding, the result of an instruction at the execution
/// stage, the PC address, and memory transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultLocation {
    /// An integer register of a core.
    IntReg {
        /// Target core.
        core: usize,
        /// Register number 0–31.
        reg: u8,
    },
    /// A floating-point register of a core.
    FpReg {
        /// Target core.
        core: usize,
        /// Register number 0–31.
        reg: u8,
    },
    /// A special-purpose register of a core.
    SpecialReg {
        /// Target core.
        core: usize,
        /// Which special register.
        reg: SpecialReg,
    },
    /// The instruction word produced by the fetch stage.
    Fetch {
        /// Target core.
        core: usize,
    },
    /// The register-selection fields seen by the decode stage.
    Decode {
        /// Target core.
        core: usize,
    },
    /// The result produced by the execution stage (ALU/FPU results,
    /// computed effective addresses, control-flow targets).
    Execute {
        /// Target core.
        core: usize,
    },
    /// The program counter.
    Pc {
        /// Target core.
        core: usize,
    },
    /// A memory transaction's data value.
    Mem {
        /// Target core.
        core: usize,
        /// Loads, stores, or both.
        target: MemTarget,
    },
}

impl FaultLocation {
    /// The core this fault targets.
    pub fn core(&self) -> usize {
        match *self {
            FaultLocation::IntReg { core, .. }
            | FaultLocation::FpReg { core, .. }
            | FaultLocation::SpecialReg { core, .. }
            | FaultLocation::Fetch { core }
            | FaultLocation::Decode { core }
            | FaultLocation::Execute { core }
            | FaultLocation::Pc { core }
            | FaultLocation::Mem { core, .. } => core,
        }
    }

    /// The pipeline-stage queue this fault belongs to (Sec. III-C: "each
    /// queue corresponds to a different pipeline stage").
    pub fn stage(&self) -> Stage {
        match self {
            FaultLocation::Fetch { .. } => Stage::Fetch,
            FaultLocation::Decode { .. } => Stage::Decode,
            FaultLocation::Execute { .. } => Stage::Execute,
            FaultLocation::Mem { .. } => Stage::Memory,
            FaultLocation::IntReg { .. }
            | FaultLocation::FpReg { .. }
            | FaultLocation::SpecialReg { .. }
            | FaultLocation::Pc { .. } => Stage::Register,
        }
    }
}

impl fmt::Display for FaultLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultLocation::IntReg { core, reg } => write!(f, "system.cpu{core} int {reg}"),
            FaultLocation::FpReg { core, reg } => write!(f, "system.cpu{core} float {reg}"),
            FaultLocation::SpecialReg { core, reg } => {
                write!(f, "system.cpu{core} special {reg}")
            }
            FaultLocation::Fetch { core } => write!(f, "system.cpu{core} fetch"),
            FaultLocation::Decode { core } => write!(f, "system.cpu{core} decode"),
            FaultLocation::Execute { core } => write!(f, "system.cpu{core} execute"),
            FaultLocation::Pc { core } => write!(f, "system.cpu{core} pc"),
            FaultLocation::Mem { core, target } => write!(f, "system.cpu{core} mem {target}"),
        }
    }
}

/// The five per-stage fault queues of Sec. III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Fetched-instruction faults.
    Fetch,
    /// Decode register-selection faults.
    Decode,
    /// Execution-stage result faults.
    Execute,
    /// Memory-transaction faults.
    Memory,
    /// Register-file and PC faults (applied at instruction boundaries).
    Register,
}

impl Stage {
    /// All stages, queue-index order.
    pub const ALL: [Stage; 5] =
        [Stage::Fetch, Stage::Decode, Stage::Execute, Stage::Memory, Stage::Register];

    /// Dense index of this stage (queue array position).
    pub fn index(self) -> usize {
        match self {
            Stage::Fetch => 0,
            Stage::Decode => 1,
            Stage::Execute => 2,
            Stage::Memory => 3,
            Stage::Register => 4,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Fetch => write!(f, "fetch"),
            Stage::Decode => write!(f, "decode"),
            Stage::Execute => write!(f, "execute"),
            Stage::Memory => write!(f, "memory"),
            Stage::Register => write!(f, "register"),
        }
    }
}

/// How the value at the fault location is corrupted (Sec. III-A-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultBehavior {
    /// Assign an immediate value.
    Set(u64),
    /// XOR the running value with a constant.
    Xor(u64),
    /// Flip one bit. Multiple bit flips are expressed as multiple faults on
    /// the same module, exactly as the paper prescribes.
    Flip(u8),
    /// Set all bits to zero.
    AllZero,
    /// Set all bits to one.
    AllOne,
}

impl fmt::Display for FaultBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultBehavior::Set(v) => write!(f, "Set:{v:#x}"),
            FaultBehavior::Xor(v) => write!(f, "Xor:{v:#x}"),
            FaultBehavior::Flip(b) => write!(f, "Flip:{b}"),
            FaultBehavior::AllZero => write!(f, "AllZero"),
            FaultBehavior::AllOne => write!(f, "AllOne"),
        }
    }
}

/// When the fault fires, relative to the thread's `fi_activate_inst` call
/// (Sec. III-A-3): either after a number of instructions served at the
/// target stage, or after a number of simulation ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTiming {
    /// Fire at the N-th instruction served at the target stage.
    Instructions(u64),
    /// Fire once the thread has run for N ticks.
    Ticks(u64),
}

impl fmt::Display for FaultTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTiming::Instructions(n) => write!(f, "Inst:{n}"),
            FaultTiming::Ticks(n) => write!(f, "Tick:{n}"),
        }
    }
}

/// Marker for permanent faults in the `occ:` attribute.
pub const OCC_PERMANENT: u64 = u64::MAX;

/// One fault to inject: the unit of the paper's input-file lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Where.
    pub location: FaultLocation,
    /// Which thread (the id given to `fi_activate_inst`).
    pub thread: u32,
    /// When, relative to activation.
    pub timing: FaultTiming,
    /// How the value is corrupted.
    pub behavior: FaultBehavior,
    /// For how many events (in the timing unit) the fault stays active:
    /// 1 = transient, N = intermittent, [`OCC_PERMANENT`] = permanent.
    pub occurrences: u64,
}

impl FaultSpec {
    /// The fault's stage queue.
    pub fn stage(&self) -> Stage {
        self.location.stage()
    }

    /// The activation window `[start, end)` in the timing unit.
    pub fn window(&self) -> (u64, u64) {
        let start = match self.timing {
            FaultTiming::Instructions(n) | FaultTiming::Ticks(n) => n,
        };
        (start, start.saturating_add(self.occurrences))
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.location {
            FaultLocation::IntReg { .. }
            | FaultLocation::FpReg { .. }
            | FaultLocation::SpecialReg { .. } => "RegisterInjectedFault",
            FaultLocation::Fetch { .. } => "FetchedInstructionInjectedFault",
            FaultLocation::Decode { .. } => "DecodeStageInjectedFault",
            FaultLocation::Execute { .. } => "ExecutionStageInjectedFault",
            FaultLocation::Pc { .. } => "PCInjectedFault",
            FaultLocation::Mem { .. } => "MemoryInjectedFault",
        };
        let occ = if self.occurrences == OCC_PERMANENT {
            "perm".to_string()
        } else {
            self.occurrences.to_string()
        };
        write!(
            f,
            "{kind} {} {} Threadid:{} occ:{occ} {}",
            self.timing, self.behavior, self.thread, self.location
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_routing_matches_the_five_queues() {
        assert_eq!(FaultLocation::Fetch { core: 0 }.stage(), Stage::Fetch);
        assert_eq!(FaultLocation::Decode { core: 0 }.stage(), Stage::Decode);
        assert_eq!(FaultLocation::Execute { core: 0 }.stage(), Stage::Execute);
        assert_eq!(FaultLocation::Mem { core: 0, target: MemTarget::Any }.stage(), Stage::Memory);
        assert_eq!(FaultLocation::IntReg { core: 0, reg: 1 }.stage(), Stage::Register);
        assert_eq!(FaultLocation::Pc { core: 0 }.stage(), Stage::Register);
    }

    #[test]
    fn window_saturates_for_permanent_faults() {
        let spec = FaultSpec {
            location: FaultLocation::Execute { core: 0 },
            thread: 0,
            timing: FaultTiming::Instructions(100),
            behavior: FaultBehavior::Flip(3),
            occurrences: OCC_PERMANENT,
        };
        assert_eq!(spec.window(), (100, u64::MAX));
        let transient = FaultSpec { occurrences: 1, ..spec };
        assert_eq!(transient.window(), (100, 101));
    }

    #[test]
    fn display_round_trips_the_listing1_shape() {
        let spec = FaultSpec {
            location: FaultLocation::IntReg { core: 1, reg: 1 },
            thread: 0,
            timing: FaultTiming::Instructions(2457),
            behavior: FaultBehavior::Flip(21),
            occurrences: 1,
        };
        let s = spec.to_string();
        assert!(s.contains("RegisterInjectedFault"));
        assert!(s.contains("Inst:2457"));
        assert!(s.contains("Flip:21"));
        assert!(s.contains("Threadid:0"));
        assert!(s.contains("system.cpu1"));
        assert!(s.contains("occ:1"));
        assert!(s.contains("int 1"));
    }
}
