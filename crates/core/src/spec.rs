//! Fault specifications: Location × Thread × Time × Behavior (Sec. III-A),
//! extended with memory-hierarchy (cache-array) locations and
//! security-style behaviors.

use gemfi_isa::SpecialReg;
pub use gemfi_mem::CacheLevel;
use std::fmt;

/// The spatial pattern of a multi-bit upset (MBU) in a cache array: which
/// bits of the 64-bit datum the fault behavior is confined to. Models the
/// physically-adjacent upset shapes of particle strikes (a run of adjacent
/// bits, a whole row, or a column of the array's byte grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MbuPattern {
    /// No spatial confinement: the behavior sees the whole 64-bit datum.
    Single,
    /// A run of `width` adjacent bits starting at `bit`.
    Adjacent {
        /// First affected bit (0–63).
        bit: u8,
        /// Run length in bits (clamped to 1–64).
        width: u8,
    },
    /// Byte row `r` of the 8×8 bit grid: bits `8r .. 8r+8`.
    Row(u8),
    /// Bit column `c` of the 8×8 bit grid: bit `c` of every byte.
    Column(u8),
}

impl MbuPattern {
    /// The bit mask this pattern confines the fault behavior to.
    pub fn mask(self) -> u64 {
        match self {
            MbuPattern::Single => u64::MAX,
            MbuPattern::Adjacent { bit, width } => {
                let bit = u32::from(bit) % 64;
                let width = u32::from(width).clamp(1, 64);
                let run = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
                // The run wraps at bit 63 rather than silently shrinking.
                run.rotate_left(bit)
            }
            MbuPattern::Row(r) => 0xffu64.rotate_left(8 * (u32::from(r) % 8)),
            MbuPattern::Column(c) => 0x0101_0101_0101_0101u64.rotate_left(u32::from(c) % 8),
        }
    }
}

impl fmt::Display for MbuPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbuPattern::Single => write!(f, "mbu:single"),
            MbuPattern::Adjacent { bit, width } => write!(f, "mbu:adj:{bit}:{width}"),
            MbuPattern::Row(r) => write!(f, "mbu:row:{r}"),
            MbuPattern::Column(c) => write!(f, "mbu:col:{c}"),
        }
    }
}

/// Which memory transactions a memory-stage fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTarget {
    /// Loaded values only.
    Load,
    /// Stored values only.
    Store,
    /// Either direction.
    Any,
}

impl fmt::Display for MemTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemTarget::Load => write!(f, "load"),
            MemTarget::Store => write!(f, "store"),
            MemTarget::Any => write!(f, "any"),
        }
    }
}

/// The micro-architectural fault location (Sec. III-A-1).
///
/// Every variant names a core (GemFI's `system.cpuN` syntax); the supported
/// module set matches the paper: registers (integer, floating point,
/// special purpose), the fetched instruction, the selection of read/write
/// registers during decoding, the result of an instruction at the execution
/// stage, the PC address, and memory transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultLocation {
    /// An integer register of a core.
    IntReg {
        /// Target core.
        core: usize,
        /// Register number 0–31.
        reg: u8,
    },
    /// A floating-point register of a core.
    FpReg {
        /// Target core.
        core: usize,
        /// Register number 0–31.
        reg: u8,
    },
    /// A special-purpose register of a core.
    SpecialReg {
        /// Target core.
        core: usize,
        /// Which special register.
        reg: SpecialReg,
    },
    /// The instruction word produced by the fetch stage.
    Fetch {
        /// Target core.
        core: usize,
    },
    /// The register-selection fields seen by the decode stage.
    Decode {
        /// Target core.
        core: usize,
    },
    /// The result produced by the execution stage (ALU/FPU results,
    /// computed effective addresses, control-flow targets).
    Execute {
        /// Target core.
        core: usize,
    },
    /// The program counter.
    Pc {
        /// Target core.
        core: usize,
    },
    /// A memory transaction's data value.
    Mem {
        /// Target core.
        core: usize,
        /// Loads, stores, or both.
        target: MemTarget,
    },
    /// One cache line's *data-array* entry: when the fault fires it plants
    /// a lesion that corrupts every access landing on the (set, way) slot,
    /// confined to the MBU pattern, for `occurrences` applications
    /// ([`OCC_PERMANENT`] = stuck-at).
    CacheData {
        /// Target core.
        core: usize,
        /// Which cache array.
        level: CacheLevel,
        /// Set index (wrapped into the level's geometry).
        set: u32,
        /// Way index within the set.
        way: u32,
        /// MBU spatial confinement of the behavior.
        pattern: MbuPattern,
    },
    /// One cache line's *tag-array* entry: the slot answers for the aliased
    /// line, so reads that hit it serve wrong data (never a sim abort).
    CacheTag {
        /// Target core.
        core: usize,
        /// Which cache array.
        level: CacheLevel,
        /// Set index (wrapped into the level's geometry).
        set: u32,
        /// Way index within the set.
        way: u32,
    },
    /// A whole cache way across every set (a stuck-at column of the data
    /// array).
    CacheWay {
        /// Target core.
        core: usize,
        /// Which cache array.
        level: CacheLevel,
        /// Way index within each set.
        way: u32,
        /// MBU spatial confinement of the behavior.
        pattern: MbuPattern,
    },
}

impl FaultLocation {
    /// The core this fault targets.
    pub fn core(&self) -> usize {
        match *self {
            FaultLocation::IntReg { core, .. }
            | FaultLocation::FpReg { core, .. }
            | FaultLocation::SpecialReg { core, .. }
            | FaultLocation::Fetch { core }
            | FaultLocation::Decode { core }
            | FaultLocation::Execute { core }
            | FaultLocation::Pc { core }
            | FaultLocation::Mem { core, .. }
            | FaultLocation::CacheData { core, .. }
            | FaultLocation::CacheTag { core, .. }
            | FaultLocation::CacheWay { core, .. } => core,
        }
    }

    /// Whether this is a cache-array (memory-hierarchy) location. Cache
    /// faults fire exactly once — `occurrences` then governs how long the
    /// planted lesion persists, not how often the spec re-fires.
    pub fn is_cache(&self) -> bool {
        matches!(
            self,
            FaultLocation::CacheData { .. }
                | FaultLocation::CacheTag { .. }
                | FaultLocation::CacheWay { .. }
        )
    }

    /// The cache array a cache location targets, if any.
    pub fn cache_level(&self) -> Option<CacheLevel> {
        match *self {
            FaultLocation::CacheData { level, .. }
            | FaultLocation::CacheTag { level, .. }
            | FaultLocation::CacheWay { level, .. } => Some(level),
            _ => None,
        }
    }

    /// The pipeline-stage queue this fault belongs to (Sec. III-C: "each
    /// queue corresponds to a different pipeline stage").
    pub fn stage(&self) -> Stage {
        match self {
            FaultLocation::Fetch { .. } => Stage::Fetch,
            FaultLocation::Decode { .. } => Stage::Decode,
            FaultLocation::Execute { .. } => Stage::Execute,
            FaultLocation::Mem { .. } => Stage::Memory,
            FaultLocation::IntReg { .. }
            | FaultLocation::FpReg { .. }
            | FaultLocation::SpecialReg { .. }
            | FaultLocation::Pc { .. } => Stage::Register,
            // Cache faults ride the queue whose events naturally reach the
            // damaged array: L1I lesions arm on fetch activity, L1D/L2 on
            // memory transactions.
            FaultLocation::CacheData { level, .. }
            | FaultLocation::CacheTag { level, .. }
            | FaultLocation::CacheWay { level, .. } => {
                if *level == CacheLevel::L1I {
                    Stage::Fetch
                } else {
                    Stage::Memory
                }
            }
        }
    }
}

impl fmt::Display for FaultLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultLocation::IntReg { core, reg } => write!(f, "system.cpu{core} int {reg}"),
            FaultLocation::FpReg { core, reg } => write!(f, "system.cpu{core} float {reg}"),
            FaultLocation::SpecialReg { core, reg } => {
                write!(f, "system.cpu{core} special {reg}")
            }
            FaultLocation::Fetch { core } => write!(f, "system.cpu{core} fetch"),
            FaultLocation::Decode { core } => write!(f, "system.cpu{core} decode"),
            FaultLocation::Execute { core } => write!(f, "system.cpu{core} execute"),
            FaultLocation::Pc { core } => write!(f, "system.cpu{core} pc"),
            FaultLocation::Mem { core, target } => write!(f, "system.cpu{core} mem {target}"),
            FaultLocation::CacheData { core, level, set, way, pattern } => {
                write!(f, "system.cpu{core} {level} data set:{set} way:{way} {pattern}")
            }
            FaultLocation::CacheTag { core, level, set, way } => {
                write!(f, "system.cpu{core} {level} tag set:{set} way:{way}")
            }
            FaultLocation::CacheWay { core, level, way, pattern } => {
                write!(f, "system.cpu{core} {level} way:{way} {pattern}")
            }
        }
    }
}

/// The five per-stage fault queues of Sec. III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Fetched-instruction faults.
    Fetch,
    /// Decode register-selection faults.
    Decode,
    /// Execution-stage result faults.
    Execute,
    /// Memory-transaction faults.
    Memory,
    /// Register-file and PC faults (applied at instruction boundaries).
    Register,
}

impl Stage {
    /// All stages, queue-index order.
    pub const ALL: [Stage; 5] =
        [Stage::Fetch, Stage::Decode, Stage::Execute, Stage::Memory, Stage::Register];

    /// Dense index of this stage (queue array position).
    pub fn index(self) -> usize {
        match self {
            Stage::Fetch => 0,
            Stage::Decode => 1,
            Stage::Execute => 2,
            Stage::Memory => 3,
            Stage::Register => 4,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Fetch => write!(f, "fetch"),
            Stage::Decode => write!(f, "decode"),
            Stage::Execute => write!(f, "execute"),
            Stage::Memory => write!(f, "memory"),
            Stage::Register => write!(f, "register"),
        }
    }
}

/// How the value at the fault location is corrupted (Sec. III-A-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultBehavior {
    /// Assign an immediate value.
    Set(u64),
    /// XOR the running value with a constant.
    Xor(u64),
    /// Flip one bit. Multiple bit flips are expressed as multiple faults on
    /// the same module, exactly as the paper prescribes.
    Flip(u8),
    /// Set all bits to zero.
    AllZero,
    /// Set all bits to one.
    AllOne,
    /// Security-style: suppress the fetched instruction entirely — the PC
    /// advances past it with no architectural side effects (an instruction
    /// skip, as induced by clock/voltage glitching). Fetch stage only.
    Skip,
    /// Security-style: replace the opcode field (the top 6 bits of the
    /// instruction word) with the given 6-bit value, leaving the operand
    /// fields intact. Decodes-or-traps per the containment taxonomy. Fetch
    /// stage only.
    Opcode(u8),
    /// Security-style: invert the evaluated condition of the targeted
    /// conditional branch (taken ↔ not-taken). Execute stage only.
    InvertBranch,
}

impl FaultBehavior {
    /// Whether this is one of the security-style behaviors (instruction
    /// skip, opcode replacement, branch-condition inversion).
    pub fn is_security(&self) -> bool {
        matches!(self, FaultBehavior::Skip | FaultBehavior::Opcode(_) | FaultBehavior::InvertBranch)
    }
}

impl fmt::Display for FaultBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultBehavior::Set(v) => write!(f, "Set:{v:#x}"),
            FaultBehavior::Xor(v) => write!(f, "Xor:{v:#x}"),
            FaultBehavior::Flip(b) => write!(f, "Flip:{b}"),
            FaultBehavior::AllZero => write!(f, "AllZero"),
            FaultBehavior::AllOne => write!(f, "AllOne"),
            FaultBehavior::Skip => write!(f, "Skip"),
            FaultBehavior::Opcode(v) => write!(f, "Opcode:{v:#x}"),
            FaultBehavior::InvertBranch => write!(f, "InvertBranch"),
        }
    }
}

/// When the fault fires, relative to the thread's `fi_activate_inst` call
/// (Sec. III-A-3): either after a number of instructions served at the
/// target stage, or after a number of simulation ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTiming {
    /// Fire at the N-th instruction served at the target stage.
    Instructions(u64),
    /// Fire once the thread has run for N ticks.
    Ticks(u64),
}

impl fmt::Display for FaultTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTiming::Instructions(n) => write!(f, "Inst:{n}"),
            FaultTiming::Ticks(n) => write!(f, "Tick:{n}"),
        }
    }
}

/// Marker for permanent faults in the `occ:` attribute.
pub const OCC_PERMANENT: u64 = u64::MAX;

/// One fault to inject: the unit of the paper's input-file lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Where.
    pub location: FaultLocation,
    /// Which thread (the id given to `fi_activate_inst`).
    pub thread: u32,
    /// When, relative to activation.
    pub timing: FaultTiming,
    /// How the value is corrupted.
    pub behavior: FaultBehavior,
    /// For how many events (in the timing unit) the fault stays active:
    /// 1 = transient, N = intermittent, [`OCC_PERMANENT`] = permanent.
    pub occurrences: u64,
}

impl FaultSpec {
    /// The fault's stage queue.
    pub fn stage(&self) -> Stage {
        self.location.stage()
    }

    /// Whether this spec fires exactly once and is then retired from its
    /// queue. Cache faults are one-shot: the fire plants a persistent
    /// lesion whose lifetime `occurrences` governs instead.
    pub fn is_one_shot(&self) -> bool {
        self.location.is_cache()
    }

    /// The activation window `[start, end)` in the timing unit.
    pub fn window(&self) -> (u64, u64) {
        let start = match self.timing {
            FaultTiming::Instructions(n) | FaultTiming::Ticks(n) => n,
        };
        (start, start.saturating_add(self.occurrences))
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.location {
            FaultLocation::IntReg { .. }
            | FaultLocation::FpReg { .. }
            | FaultLocation::SpecialReg { .. } => "RegisterInjectedFault",
            FaultLocation::Fetch { .. } => "FetchedInstructionInjectedFault",
            FaultLocation::Decode { .. } => "DecodeStageInjectedFault",
            FaultLocation::Execute { .. } => "ExecutionStageInjectedFault",
            FaultLocation::Pc { .. } => "PCInjectedFault",
            FaultLocation::Mem { .. } => "MemoryInjectedFault",
            FaultLocation::CacheData { .. }
            | FaultLocation::CacheTag { .. }
            | FaultLocation::CacheWay { .. } => "CacheInjectedFault",
        };
        let occ = if self.occurrences == OCC_PERMANENT {
            "perm".to_string()
        } else {
            self.occurrences.to_string()
        };
        write!(
            f,
            "{kind} {} {} Threadid:{} occ:{occ} {}",
            self.timing, self.behavior, self.thread, self.location
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_routing_matches_the_five_queues() {
        assert_eq!(FaultLocation::Fetch { core: 0 }.stage(), Stage::Fetch);
        assert_eq!(FaultLocation::Decode { core: 0 }.stage(), Stage::Decode);
        assert_eq!(FaultLocation::Execute { core: 0 }.stage(), Stage::Execute);
        assert_eq!(FaultLocation::Mem { core: 0, target: MemTarget::Any }.stage(), Stage::Memory);
        assert_eq!(FaultLocation::IntReg { core: 0, reg: 1 }.stage(), Stage::Register);
        assert_eq!(FaultLocation::Pc { core: 0 }.stage(), Stage::Register);
    }

    #[test]
    fn window_saturates_for_permanent_faults() {
        let spec = FaultSpec {
            location: FaultLocation::Execute { core: 0 },
            thread: 0,
            timing: FaultTiming::Instructions(100),
            behavior: FaultBehavior::Flip(3),
            occurrences: OCC_PERMANENT,
        };
        assert_eq!(spec.window(), (100, u64::MAX));
        let transient = FaultSpec { occurrences: 1, ..spec };
        assert_eq!(transient.window(), (100, 101));
    }

    #[test]
    fn display_round_trips_the_listing1_shape() {
        let spec = FaultSpec {
            location: FaultLocation::IntReg { core: 1, reg: 1 },
            thread: 0,
            timing: FaultTiming::Instructions(2457),
            behavior: FaultBehavior::Flip(21),
            occurrences: 1,
        };
        let s = spec.to_string();
        assert!(s.contains("RegisterInjectedFault"));
        assert!(s.contains("Inst:2457"));
        assert!(s.contains("Flip:21"));
        assert!(s.contains("Threadid:0"));
        assert!(s.contains("system.cpu1"));
        assert!(s.contains("occ:1"));
        assert!(s.contains("int 1"));
    }

    #[test]
    fn mbu_patterns_mask_the_right_bits() {
        assert_eq!(MbuPattern::Single.mask(), u64::MAX);
        assert_eq!(MbuPattern::Adjacent { bit: 4, width: 3 }.mask(), 0b111 << 4);
        assert_eq!(MbuPattern::Adjacent { bit: 62, width: 4 }.mask(), (0b11 << 62) | 0b11);
        assert_eq!(MbuPattern::Row(2).mask(), 0xff_0000);
        assert_eq!(MbuPattern::Column(0).mask(), 0x0101_0101_0101_0101);
        assert_eq!(MbuPattern::Column(7).mask(), 0x8080_8080_8080_8080);
        // Out-of-range indices wrap rather than widen or panic.
        assert_eq!(MbuPattern::Row(10).mask(), MbuPattern::Row(2).mask());
        assert_eq!(MbuPattern::Column(15).mask(), MbuPattern::Column(7).mask());
        assert_eq!(MbuPattern::Adjacent { bit: 0, width: 0 }.mask(), 1);
    }

    #[test]
    fn cache_locations_route_by_level_and_are_one_shot() {
        let data = FaultLocation::CacheData {
            core: 0,
            level: CacheLevel::L1I,
            set: 3,
            way: 0,
            pattern: MbuPattern::Single,
        };
        assert_eq!(data.stage(), Stage::Fetch);
        let tag = FaultLocation::CacheTag { core: 0, level: CacheLevel::L1D, set: 3, way: 0 };
        assert_eq!(tag.stage(), Stage::Memory);
        let way = FaultLocation::CacheWay {
            core: 0,
            level: CacheLevel::L2,
            way: 1,
            pattern: MbuPattern::Row(0),
        };
        assert_eq!(way.stage(), Stage::Memory);
        for loc in [data, tag, way] {
            assert!(loc.is_cache());
            assert_eq!(loc.core(), 0);
            let spec = FaultSpec {
                location: loc,
                thread: 0,
                timing: FaultTiming::Instructions(1),
                behavior: FaultBehavior::Flip(0),
                occurrences: OCC_PERMANENT,
            };
            assert!(spec.is_one_shot());
            assert!(spec.to_string().starts_with("CacheInjectedFault"));
        }
        assert!(!FaultLocation::Fetch { core: 0 }.is_cache());
    }

    #[test]
    fn security_behaviors_render_their_tokens() {
        assert_eq!(FaultBehavior::Skip.to_string(), "Skip");
        assert_eq!(FaultBehavior::Opcode(0x1a).to_string(), "Opcode:0x1a");
        assert_eq!(FaultBehavior::InvertBranch.to_string(), "InvertBranch");
        assert!(FaultBehavior::Skip.is_security());
        assert!(FaultBehavior::Opcode(0).is_security());
        assert!(FaultBehavior::InvertBranch.is_security());
        assert!(!FaultBehavior::Flip(3).is_security());
    }
}
