//! The five per-pipeline-stage fault queues (Sec. III-C).
//!
//! "The file is parsed at startup and each fault is inserted to one of five
//! internal queues. Each queue corresponds to a different pipeline stage.
//! […] Queue entries are sorted according to the timing of each fault."

use crate::spec::{FaultSpec, FaultTiming, Stage};

/// A queued fault plus its firing bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedFault {
    /// The spec as parsed.
    pub spec: FaultSpec,
    /// How many times it has fired so far.
    pub fired: u64,
}

/// The firing decision for one stage event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Match {
    /// Event is before the fault's window.
    NotYet,
    /// Fire on this event.
    Fire,
    /// The fault can no longer fire; drop it.
    Expired,
}

/// Instruction-timed faults arm at their event index and fire on the next
/// `occurrences` *matching* events (a load-value fault whose index lands on
/// a store must fire on the following load, not expire). Tick-timed faults
/// keep strict window semantics: "active for the next N simulation cycles".
fn classify(spec: &FaultSpec, fired: u64, stage_count: u64, ticks_since: u64) -> Match {
    match spec.timing {
        FaultTiming::Instructions(start) => {
            if stage_count < start {
                Match::NotYet
            } else if fired < spec.occurrences {
                Match::Fire
            } else {
                Match::Expired
            }
        }
        FaultTiming::Ticks(_) => {
            let (start, end) = spec.window();
            if ticks_since < start {
                Match::NotYet
            } else if ticks_since < end && fired < spec.occurrences {
                Match::Fire
            } else {
                Match::Expired
            }
        }
    }
}

/// The five stage queues.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageQueues {
    queues: [Vec<QueuedFault>; 5],
}

impl StageQueues {
    /// Builds the queues from parsed faults, each sorted by fault time.
    pub fn from_faults(faults: &[FaultSpec]) -> StageQueues {
        let mut queues: [Vec<QueuedFault>; 5] = Default::default();
        for spec in faults {
            queues[spec.stage().index()].push(QueuedFault { spec: *spec, fired: 0 });
        }
        for q in &mut queues {
            q.sort_by_key(|f| f.spec.window().0);
        }
        StageQueues { queues }
    }

    /// Total faults still queued (not yet expired/exhausted).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Faults pending in one stage queue.
    pub fn pending_in(&self, stage: Stage) -> usize {
        self.queues[stage.index()].len()
    }

    /// All still-queued faults, across every stage. Entries that are past
    /// their window but not yet lazily removed by [`StageQueues::scan`] are
    /// included — horizon computation must treat them as imminently
    /// observable, not prune them (a deactivate/re-activate cycle resets a
    /// thread's activation age, which can bring an "expired" tick window
    /// back into reach).
    pub fn iter(&self) -> impl Iterator<Item = &QueuedFault> {
        self.queues.iter().flatten()
    }

    /// Scans `stage`'s queue for faults that fire for a thread whose
    /// stage-served count is `stage_count` and whose activation age is
    /// `ticks_since`, restricted to `thread` and `core`. Fired faults are
    /// passed to `fire`; exhausted and expired entries are removed.
    ///
    /// An extra `filter` narrows matching within a stage (e.g. load vs store
    /// memory faults); it sees each candidate spec.
    #[allow(clippy::too_many_arguments)]
    pub fn scan(
        &mut self,
        stage: Stage,
        core: usize,
        thread: u32,
        stage_count: u64,
        ticks_since: u64,
        mut filter: impl FnMut(&FaultSpec) -> bool,
        mut fire: impl FnMut(&FaultSpec),
    ) {
        let q = &mut self.queues[stage.index()];
        let mut i = 0;
        while i < q.len() {
            let entry = &mut q[i];
            if entry.spec.thread != thread
                || entry.spec.location.core() != core
                || !filter(&entry.spec)
            {
                i += 1;
                continue;
            }
            match classify(&entry.spec, entry.fired, stage_count, ticks_since) {
                Match::NotYet => {
                    // Queues are sorted by start time, but different timing
                    // units (Inst vs Tick) interleave, so keep scanning.
                    i += 1;
                }
                Match::Fire => {
                    entry.fired += 1;
                    let spec = entry.spec;
                    // One-shot specs (cache faults) retire on their first
                    // fire: `occurrences` governs the planted lesion's
                    // lifetime, not how often the spec re-fires.
                    let exhausted = entry.fired >= entry.spec.occurrences || spec.is_one_shot();
                    if exhausted {
                        q.remove(i);
                    } else {
                        i += 1;
                    }
                    fire(&spec);
                }
                Match::Expired => {
                    q.remove(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultBehavior, FaultLocation, OCC_PERMANENT};

    fn exec_fault(at: u64, occ: u64) -> FaultSpec {
        FaultSpec {
            location: FaultLocation::Execute { core: 0 },
            thread: 0,
            timing: FaultTiming::Instructions(at),
            behavior: FaultBehavior::Flip(0),
            occurrences: occ,
        }
    }

    fn fired_at(q: &mut StageQueues, count: u64) -> usize {
        let mut n = 0;
        q.scan(Stage::Execute, 0, 0, count, 0, |_| true, |_| n += 1);
        n
    }

    #[test]
    fn transient_fires_exactly_once_at_its_time() {
        let mut q = StageQueues::from_faults(&[exec_fault(5, 1)]);
        assert_eq!(fired_at(&mut q, 4), 0);
        assert_eq!(fired_at(&mut q, 5), 1);
        assert_eq!(q.pending(), 0);
        assert_eq!(fired_at(&mut q, 6), 0);
    }

    #[test]
    fn intermittent_fires_for_its_window() {
        let mut q = StageQueues::from_faults(&[exec_fault(10, 3)]);
        assert_eq!(fired_at(&mut q, 10), 1);
        assert_eq!(fired_at(&mut q, 11), 1);
        assert_eq!(fired_at(&mut q, 12), 1);
        assert_eq!(fired_at(&mut q, 13), 0);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn permanent_fault_keeps_firing() {
        let mut q = StageQueues::from_faults(&[exec_fault(2, OCC_PERMANENT)]);
        for count in 2..100 {
            assert_eq!(fired_at(&mut q, count), 1, "count {count}");
        }
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn armed_fault_fires_on_next_matching_event() {
        // A fault whose exact event index was filtered away (e.g. a
        // load-value fault scheduled on a store event) fires on the next
        // matching event instead of expiring.
        let mut q = StageQueues::from_faults(&[exec_fault(5, 1)]);
        assert_eq!(fired_at(&mut q, 50), 1);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn tick_windows_do_expire() {
        let spec = FaultSpec { timing: FaultTiming::Ticks(10), ..exec_fault(0, 2) };
        let mut q = StageQueues::from_faults(&[spec]);
        let mut n = 0;
        q.scan(Stage::Execute, 0, 0, 1, 50, |_| true, |_| n += 1);
        assert_eq!(n, 0, "past the tick window: no late fire");
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn thread_and_core_must_match() {
        let mut q = StageQueues::from_faults(&[exec_fault(1, 1)]);
        let mut n = 0;
        q.scan(Stage::Execute, 0, 9, 1, 0, |_| true, |_| n += 1); // wrong thread
        q.scan(Stage::Execute, 3, 0, 1, 0, |_| true, |_| n += 1); // wrong core
        assert_eq!(n, 0);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn tick_based_faults_use_activation_age() {
        let spec = FaultSpec { timing: FaultTiming::Ticks(100), ..exec_fault(0, 1) };
        let mut q = StageQueues::from_faults(&[spec]);
        let mut n = 0;
        q.scan(Stage::Execute, 0, 0, 999, 99, |_| true, |_| n += 1);
        assert_eq!(n, 0, "too early in ticks");
        q.scan(Stage::Execute, 0, 0, 1000, 100, |_| true, |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn multiple_faults_same_event_all_fire() {
        // "Multiple bit flips are supported by injecting multiple faults on
        // the same module."
        let mut q = StageQueues::from_faults(&[exec_fault(5, 1), exec_fault(5, 1)]);
        assert_eq!(fired_at(&mut q, 5), 2);
    }

    #[test]
    fn queues_route_by_stage() {
        let reg =
            FaultSpec { location: FaultLocation::IntReg { core: 0, reg: 1 }, ..exec_fault(1, 1) };
        let q = StageQueues::from_faults(&[exec_fault(1, 1), reg]);
        assert_eq!(q.pending_in(Stage::Execute), 1);
        assert_eq!(q.pending_in(Stage::Register), 1);
        assert_eq!(q.pending_in(Stage::Fetch), 0);
    }
}
