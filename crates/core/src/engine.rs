//! The GemFI injection engine: a [`FaultHooks`] implementation.
//!
//! Fig. 2 of the paper, as code: on each simulated instruction the engine
//! (1) checks whether the running thread has fault injection enabled — via
//! the per-core cached pointer refreshed on context switches, or via a hash
//! lookup when the optimization is disabled for the ablation — (2) updates
//! the thread's per-stage counters, (3) scans the stage's fault queue for
//! matching faults, and (4) corrupts the targeted value, logging an
//! [`InjectionRecord`] with the affected instruction's disassembly.

use crate::config::FaultConfig;
use crate::corrupt::apply;
use crate::queues::StageQueues;
use crate::record::InjectionRecord;
use crate::spec::{
    FaultBehavior, FaultLocation, FaultSpec, FaultTiming, MbuPattern, MemTarget, Stage,
};
use crate::thread::ThreadTable;
use gemfi_cpu::{Dormancy, ElisionBatch, FaultHooks};
use gemfi_isa::{disassemble, ArchState, FpReg, Instr, IntReg, RawInstr, RegRef};
use gemfi_mem::{CacheLesion, LesionEffect, LesionKind, LesionTarget, Ticks};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable abort flag — the campaign-side watchdog plumbing.
///
/// Campaign coordinators (lease reapers, wall-clock watchdogs, shutdown
/// paths) hold one end; the engine driving an experiment holds the other.
/// Raising the flag asks the experiment's chunked run loop to stop at the
/// next scheduling boundary, so a hung or orphaned simulation is abandoned
/// promptly instead of burning its whole simulated-tick budget.
#[derive(Debug, Clone, Default)]
pub struct AbortToken(Arc<AtomicBool>);

impl AbortToken {
    /// A fresh, unraised token.
    pub fn new() -> AbortToken {
        AbortToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn abort(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether any holder has raised the flag.
    pub fn is_aborted(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Use the per-core cached pointer to the running thread's
    /// `ThreadEnabledFault` (refreshed on context switches) instead of a
    /// hash-table lookup on every simulated event — the Sec. III-C
    /// optimization. Disable for the ablation benchmark.
    pub pcb_pointer_cache: bool,
    /// Number of cores the engine tracks.
    pub cores: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { pcb_pointer_cache: true, cores: 1 }
    }
}

/// How far a single fault spec is from its firing point, as seen from the
/// engine's current thread-activation state — the per-spec refinement of
/// [`Dormancy`](gemfi_cpu::Dormancy). Fork-at-injection planning uses it to
/// decide where along the fault-free trunk to fork each experiment's suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireDistance {
    /// The spec can fire on the very next matching event (or is already in
    /// its tick window): fork *before* advancing any further.
    Armed,
    /// At least `events` more matching stage events, or `ticks` more ticks,
    /// must elapse before the spec can fire. When the spec's thread has not
    /// activated injection yet these are lower bounds (activation resets
    /// the counters, so the full distance still lies ahead); either field is
    /// `u64::MAX` when that axis does not constrain the spec.
    Quiet {
        /// Matching stage events remaining before the spec can fire.
        events: u64,
        /// Ticks remaining before the spec's window opens.
        ticks: u64,
    },
}

/// In decode-stage faults, the corruptible space is the concatenation of the
/// three register-selector fields: `Ra`(5) | `Rb`(5) | `Rc`(5) = 15 bits.
pub const DECODE_SELECTOR_BITS: u8 = 15;

fn selectors_of(word: RawInstr) -> u64 {
    ((word.ra() as u64) << 10) | ((word.rb() as u64) << 5) | word.rc() as u64
}

fn with_selectors(word: RawInstr, sel: u64) -> RawInstr {
    word.with_field(gemfi_isa::format::RA, ((sel >> 10) & 0x1f) as u32)
        .with_field(gemfi_isa::format::RB, ((sel >> 5) & 0x1f) as u32)
        .with_field(gemfi_isa::format::RC, (sel & 0x1f) as u32)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Watch {
    record: usize,
    core: usize,
    reg: RegRef,
}

/// The fault-injection engine. Plug into a machine as its hook
/// implementation:
///
/// ```
/// use gemfi::{FaultConfig, GemFiEngine};
/// use gemfi_asm::{Assembler, Reg};
/// use gemfi_sim::{Machine, MachineConfig, RunExit};
///
/// let mut a = Assembler::new();
/// a.fi_activate(0);
/// a.li(Reg::R1, 5);
/// a.addq_lit(Reg::R1, 1, Reg::A0);
/// a.pal(gemfi_isa::PalFunc::Exit);
/// let program = a.finish().expect("assembles");
///
/// let config: FaultConfig =
///     "ExecutionStageInjectedFault Inst:2 Flip:3 Threadid:0 system.cpu0 occ:1"
///         .parse()
///         .expect("valid");
/// let mut m = Machine::boot(
///     MachineConfig::default(),
///     &program,
///     GemFiEngine::new(config),
/// ).expect("boots");
/// let exit = m.run();
/// assert!(matches!(exit, RunExit::Halted(_)));
/// assert_eq!(m.hooks().records().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GemFiEngine {
    config: EngineConfig,
    queues: StageQueues,
    threads: ThreadTable,
    records: Vec<InjectionRecord>,
    watches: Vec<Watch>,
    /// Current PCB base per core (for the uncached lookup path).
    current_pcbb: Vec<u64>,
    last_tick: Ticks,
    /// Events processed per stage while a thread was enabled (engine-side
    /// statistics; used by overhead analyses).
    stage_events: [u64; 5],
    /// Cache lesions fired but not yet planted into the memory system: the
    /// CPU model drains them at the next instruction boundary via
    /// [`FaultHooks::take_cache_lesions`].
    pending_lesions: Vec<CacheLesion>,
    /// Per-core armed instruction-skip flags ([`FaultHooks::take_skip`]).
    skip_armed: Vec<bool>,
    /// External abort flag (campaign watchdog plumbing).
    abort: AbortToken,
}

impl GemFiEngine {
    /// An engine with the default configuration.
    pub fn new(faults: FaultConfig) -> GemFiEngine {
        GemFiEngine::with_config(faults, EngineConfig::default())
    }

    /// An engine with explicit tuning.
    pub fn with_config(faults: FaultConfig, config: EngineConfig) -> GemFiEngine {
        GemFiEngine {
            config,
            queues: StageQueues::from_faults(faults.faults()),
            threads: ThreadTable::new(config.cores),
            records: Vec::new(),
            watches: Vec::new(),
            current_pcbb: vec![0; config.cores],
            last_tick: 0,
            stage_events: [0; 5],
            pending_lesions: Vec::new(),
            skip_armed: vec![false; config.cores],
            abort: AbortToken::new(),
        }
    }

    /// Installs a shared abort token; the campaign raises it to stop this
    /// engine's experiment at the next run-loop boundary.
    pub fn set_abort_token(&mut self, token: AbortToken) {
        self.abort = token;
    }

    /// The engine's abort token (clone to hand to a watchdog).
    pub fn abort_token(&self) -> AbortToken {
        self.abort.clone()
    }

    /// Whether an external abort was requested.
    pub fn abort_requested(&self) -> bool {
        self.abort.is_aborted()
    }

    /// Resets all internal state and installs a new fault configuration —
    /// the `fi_read_init_all()` restore semantics ("Upon restoring from the
    /// checkpoint, it resets all the internal information of GemFI, allowing
    /// the same checkpoint to be used … with potentially different fault
    /// injection configurations").
    pub fn reset(&mut self, faults: FaultConfig) {
        let abort = self.abort.clone();
        *self = GemFiEngine::with_config(faults, self.config);
        self.abort = abort;
    }

    /// The faults injected so far.
    pub fn records(&self) -> &[InjectionRecord] {
        &self.records
    }

    /// Faults still queued.
    pub fn pending_faults(&self) -> usize {
        self.queues.pending()
    }

    /// Threads currently enabled for injection.
    pub fn active_threads(&self) -> usize {
        self.threads.active_threads()
    }

    /// Events observed per stage while injection was enabled.
    pub fn stage_events(&self) -> [u64; 5] {
        self.stage_events
    }

    /// Whether any fired fault may have propagated (register faults must
    /// have been consumed; in-flight faults must have changed the value).
    pub fn any_propagated(&self) -> bool {
        self.records.iter().any(InjectionRecord::propagated)
    }

    /// Whether the engine is fully dormant on `core` at `now`: no pending
    /// fault can ever fire in the current thread-activation state, and no
    /// consumption watch is live. Campaign schedulers use this to pick a
    /// coarser chunk granularity for the post-fault fast-forward.
    pub fn is_dormant(&self, core: usize, now: Ticks) -> bool {
        matches!(FaultHooks::dormancy(self, core, now), Dormancy::Dormant)
    }

    /// How far `spec` is from firing on `core`, given this engine's current
    /// thread-activation state. The per-spec analogue of the [`Dormancy`]
    /// horizon: where `dormancy` folds every queued fault into one scalar,
    /// this answers for a single spec that need not even be queued here —
    /// fork-at-injection asks a fault-free trunk engine how close each
    /// *planned* experiment's fault is.
    ///
    /// The answer is conservative in exactly one direction: when the spec's
    /// thread has activated injection the distance is exact, and when it has
    /// not (activation resets counters, so the whole distance still lies
    /// ahead) the returned `Quiet` fields are lower bounds. A spec that can
    /// never fire on this core reports `Quiet { u64::MAX, u64::MAX }`.
    pub fn fire_distance(&self, core: usize, now: Ticks, spec: &FaultSpec) -> FireDistance {
        if spec.location.core() != core {
            return FireDistance::Quiet { events: u64::MAX, ticks: u64::MAX };
        }
        match self.threads.by_id(spec.thread) {
            Some(rec) => match spec.timing {
                FaultTiming::Instructions(start) => {
                    let served = rec.count(spec.stage());
                    if served >= start {
                        FireDistance::Armed
                    } else {
                        FireDistance::Quiet { events: start - served, ticks: u64::MAX }
                    }
                }
                FaultTiming::Ticks(_) => {
                    let since = rec.ticks_since_activation(now);
                    let (start, _) = spec.window();
                    if since >= start {
                        FireDistance::Armed
                    } else {
                        FireDistance::Quiet { events: u64::MAX, ticks: start - since }
                    }
                }
            },
            // Not activated yet: counters start from zero at activation, so
            // the spec's full offset is still ahead of us — a valid lower
            // bound. A zero offset could fire immediately after activation.
            None => match spec.timing {
                FaultTiming::Instructions(0) => FireDistance::Armed,
                FaultTiming::Instructions(start) => {
                    FireDistance::Quiet { events: start, ticks: u64::MAX }
                }
                FaultTiming::Ticks(_) => {
                    let (start, _) = spec.window();
                    if start == 0 {
                        FireDistance::Armed
                    } else {
                        FireDistance::Quiet { events: u64::MAX, ticks: start }
                    }
                }
            },
        }
    }

    /// An engine for a forked machine: carries over everything the guest's
    /// execution history determines — thread activations, per-core PCB
    /// bases, per-stage event counters, the tick clock — while installing a
    /// *fresh* fault queue built from `faults`, empty injection records and
    /// watches, and a private abort token.
    ///
    /// Valid strictly *before* any of `faults` could have fired: queue scans
    /// ahead of a spec's window never mutate the queue, so an engine that
    /// had carried these specs from the start would be in exactly this state
    /// at the fork point. Fork-at-injection relies on that equivalence to
    /// run each experiment's divergent suffix from a shared fault-free
    /// trunk.
    pub fn fork_with_faults(&self, faults: FaultConfig) -> GemFiEngine {
        GemFiEngine {
            config: self.config,
            queues: StageQueues::from_faults(faults.faults()),
            threads: self.threads.clone(),
            records: Vec::new(),
            watches: Vec::new(),
            current_pcbb: self.current_pcbb.clone(),
            last_tick: self.last_tick,
            stage_events: self.stage_events,
            // Valid pre-fire only (see above), so nothing can be armed or
            // awaiting planting at the fork point.
            pending_lesions: Vec::new(),
            skip_armed: vec![false; self.config.cores],
            abort: AbortToken::new(),
        }
    }

    fn resolve_thread(
        threads: &mut ThreadTable,
        config: &EngineConfig,
        current_pcbb: &[u64],
        core: usize,
    ) -> Option<ThreadKey> {
        let rec = if config.pcb_pointer_cache {
            threads.active_mut(core)?
        } else {
            threads.active_mut_uncached(core, *current_pcbb.get(core)?)?
        };
        Some(ThreadKey { id: rec.id })
    }

    /// Common stage-event processing: resolve thread, bump the stage
    /// counter, and scan the queue. Returns fired specs (usually 0 or 1).
    ///
    /// This is the per-simulated-instruction hot path (Fig. 2): one thread
    /// resolution (cached pointer or hash lookup), one counter bump, and a
    /// queue scan that early-outs when the stage has nothing pending.
    #[inline]
    fn stage_event(
        &mut self,
        core: usize,
        stage: Stage,
        filter: impl FnMut(&FaultSpec) -> bool,
    ) -> Vec<FaultSpec> {
        let rec = if self.config.pcb_pointer_cache {
            self.threads.active_mut(core)
        } else {
            let pcbb = self.current_pcbb.get(core).copied().unwrap_or(0);
            self.threads.active_mut_uncached(core, pcbb)
        };
        let Some(rec) = rec else { return Vec::new() };
        let id = rec.id;
        let count = rec.bump(stage);
        let ticks_since = rec.ticks_since_activation(self.last_tick);
        self.stage_events[stage.index()] += 1;
        if self.queues.pending_in(stage) == 0 {
            return Vec::new();
        }
        let mut fired = Vec::new();
        self.queues.scan(stage, core, id, count, ticks_since, filter, |spec| {
            fired.push(*spec);
        });
        fired
    }

    /// Compiles a fired cache-fault spec into the lesion the memory system
    /// will apply: behavior × MBU pattern becomes a bit-level
    /// [`LesionEffect`], and `occurrences` becomes the lesion's lifetime
    /// (`OCC_PERMANENT` = stuck-at). `None` for non-cache locations.
    fn lesion_for(spec: &FaultSpec) -> Option<CacheLesion> {
        let (level, target, kind, pattern) = match spec.location {
            FaultLocation::CacheData { level, set, way, pattern, .. } => {
                (level, LesionTarget::Line { set, way }, LesionKind::Data, pattern)
            }
            // Tag corruption has no MBU axis: the behavior acts on the full
            // tag value.
            FaultLocation::CacheTag { level, set, way, .. } => {
                (level, LesionTarget::Line { set, way }, LesionKind::Tag, MbuPattern::Single)
            }
            FaultLocation::CacheWay { level, way, pattern, .. } => {
                (level, LesionTarget::Way { way }, LesionKind::Data, pattern)
            }
            _ => return None,
        };
        let pmask = pattern.mask();
        let effect = match spec.behavior {
            FaultBehavior::Set(v) => LesionEffect { set_mask: pmask, set_value: v, xor_mask: 0 },
            FaultBehavior::AllZero => LesionEffect { set_mask: pmask, set_value: 0, xor_mask: 0 },
            FaultBehavior::AllOne => {
                LesionEffect { set_mask: pmask, set_value: u64::MAX, xor_mask: 0 }
            }
            FaultBehavior::Xor(m) => {
                LesionEffect { xor_mask: m & pmask, ..LesionEffect::default() }
            }
            FaultBehavior::Flip(bit) => LesionEffect {
                xor_mask: (1u64 << (u32::from(bit) % 64)) & pmask,
                ..LesionEffect::default()
            },
            // Control-flow behaviors never parse onto cache locations; on
            // programmatic misuse the lesion is identity (contained).
            FaultBehavior::Skip | FaultBehavior::Opcode(_) | FaultBehavior::InvertBranch => {
                LesionEffect::default()
            }
        };
        Some(CacheLesion { level, target, kind, effect, remaining: spec.occurrences })
    }

    fn push_record(
        &mut self,
        stage: Stage,
        spec: &FaultSpec,
        pc: u64,
        instr: Option<String>,
        before: u64,
        after: u64,
    ) -> usize {
        self.records.push(InjectionRecord {
            tick: self.last_tick,
            stage,
            location: spec.location,
            thread: spec.thread,
            pc,
            instr,
            before,
            after,
            consumed: false,
            overwritten: false,
        });
        self.records.len() - 1
    }
}

#[derive(Debug, Clone, Copy)]
struct ThreadKey {
    id: u32,
}

impl FaultHooks for GemFiEngine {
    fn before_instruction(&mut self, core: usize, now: Ticks, arch: &mut ArchState) {
        self.last_tick = now;
        if core < self.current_pcbb.len() {
            self.current_pcbb[core] = arch.pcbb;
        }
        // Fast path: nothing queued for the register stage.
        if self.queues.pending_in(Stage::Register) == 0 {
            return;
        }
        // Register-stage timing counts *committed* instructions (bumped in
        // `on_commit`); read without bumping here.
        let Some(key) =
            Self::resolve_thread(&mut self.threads, &self.config, &self.current_pcbb, core)
        else {
            return;
        };
        let (count, ticks_since) = {
            let rec = if self.config.pcb_pointer_cache {
                self.threads.active_mut(core).expect("resolved above")
            } else {
                self.threads
                    .active_mut_uncached(core, self.current_pcbb[core])
                    .expect("resolved above")
            };
            (rec.count(Stage::Register), rec.ticks_since_activation(now))
        };
        let mut fired = Vec::new();
        self.queues.scan(
            Stage::Register,
            core,
            key.id,
            count,
            ticks_since,
            |_| true,
            |spec| {
                fired.push(*spec);
            },
        );
        for spec in fired {
            let (before, after, watch_reg) = match spec.location {
                FaultLocation::IntReg { reg, .. } => {
                    let r = IntReg::from_bits(reg as u32);
                    let before = arch.regs.read_int(r);
                    let after = apply(spec.behavior, before, 64);
                    arch.regs.write_int(r, after);
                    (before, after, Some(RegRef::Int(r)))
                }
                FaultLocation::FpReg { reg, .. } => {
                    let r = FpReg::from_bits(reg as u32);
                    let before = arch.regs.read_fp_bits(r);
                    let after = apply(spec.behavior, before, 64);
                    arch.regs.write_fp_bits(r, after);
                    (before, after, Some(RegRef::Fp(r)))
                }
                FaultLocation::SpecialReg { reg, .. } => {
                    let before = arch.read_special(reg);
                    let after = apply(spec.behavior, before, 64);
                    arch.write_special(reg, after);
                    (before, after, None)
                }
                FaultLocation::Pc { .. } => {
                    let before = arch.pc;
                    let after = apply(spec.behavior, before, 64);
                    arch.pc = after;
                    (before, after, None)
                }
                _ => unreachable!("register queue only holds register/PC faults"),
            };
            let idx = self.push_record(Stage::Register, &spec, arch.pc, None, before, after);
            if let Some(reg) = watch_reg {
                if before != after {
                    self.watches.push(Watch { record: idx, core, reg });
                }
            }
        }
    }

    fn on_fetch(&mut self, core: usize, pc: u64, word: RawInstr) -> RawInstr {
        let fired = self.stage_event(core, Stage::Fetch, |_| true);
        let mut w = word;
        for spec in fired {
            // An L1I cache fault plants a lesion instead of corrupting the
            // firing word: the damage shows up on subsequent fetches served
            // through the lesioned slot.
            if let Some(lesion) = Self::lesion_for(&spec) {
                let v = u64::from(w.0);
                self.pending_lesions.push(lesion);
                self.push_record(Stage::Fetch, &spec, pc, Some(disassemble(word)), v, v);
                continue;
            }
            // An instruction-skip fault arms the per-core flag; the CPU
            // model nullifies the instruction at [`FaultHooks::take_skip`].
            // Recorded as word → 0 (the pipeline sees it suppressed).
            if spec.behavior == FaultBehavior::Skip {
                if let Some(armed) = self.skip_armed.get_mut(core) {
                    *armed = true;
                }
                let v = u64::from(w.0);
                self.push_record(Stage::Fetch, &spec, pc, Some(disassemble(word)), v, 0);
                continue;
            }
            let before = w.0 as u64;
            let after = apply(spec.behavior, before, 32);
            w = RawInstr(after as u32);
            self.push_record(Stage::Fetch, &spec, pc, Some(disassemble(word)), before, after);
        }
        w
    }

    fn on_decode(&mut self, core: usize, word: RawInstr) -> RawInstr {
        let fired = self.stage_event(core, Stage::Decode, |_| true);
        let mut w = word;
        for spec in fired {
            let before = selectors_of(w);
            let after = apply(spec.behavior, before, DECODE_SELECTOR_BITS);
            w = with_selectors(w, after);
            self.push_record(Stage::Decode, &spec, 0, Some(disassemble(word)), before, after);
        }
        w
    }

    fn on_execute_result(&mut self, core: usize, instr: &Instr, value: u64) -> u64 {
        // Branch-inversion faults fire on branch *resolution* (`on_branch`),
        // never on a produced value.
        let fired = self
            .stage_event(core, Stage::Execute, |spec| spec.behavior != FaultBehavior::InvertBranch);
        let mut v = value;
        for spec in fired {
            let before = v;
            v = apply(spec.behavior, before, 64);
            self.push_record(Stage::Execute, &spec, 0, Some(instr.to_string()), before, v);
        }
        v
    }

    fn on_mem_load(&mut self, core: usize, addr: u64, value: u64) -> u64 {
        // L1D/L2 cache faults ride the memory-stage timeline: any data
        // memory event can fire them, planting a lesion without corrupting
        // the firing transaction itself.
        let fired = self.stage_event(core, Stage::Memory, |spec| {
            spec.location.is_cache()
                || matches!(
                    spec.location,
                    FaultLocation::Mem { target: MemTarget::Load | MemTarget::Any, .. }
                )
        });
        let mut v = value;
        for spec in fired {
            if let Some(lesion) = Self::lesion_for(&spec) {
                self.pending_lesions.push(lesion);
                self.push_record(Stage::Memory, &spec, addr, None, v, v);
                continue;
            }
            let before = v;
            v = apply(spec.behavior, before, 64);
            self.push_record(Stage::Memory, &spec, addr, None, before, v);
        }
        v
    }

    fn on_mem_store(&mut self, core: usize, addr: u64, value: u64) -> u64 {
        let fired = self.stage_event(core, Stage::Memory, |spec| {
            spec.location.is_cache()
                || matches!(
                    spec.location,
                    FaultLocation::Mem { target: MemTarget::Store | MemTarget::Any, .. }
                )
        });
        let mut v = value;
        for spec in fired {
            if let Some(lesion) = Self::lesion_for(&spec) {
                self.pending_lesions.push(lesion);
                self.push_record(Stage::Memory, &spec, addr, None, v, v);
                continue;
            }
            let before = v;
            v = apply(spec.behavior, before, 64);
            self.push_record(Stage::Memory, &spec, addr, None, before, v);
        }
        v
    }

    fn take_skip(&mut self, core: usize) -> bool {
        match self.skip_armed.get_mut(core) {
            Some(armed) if *armed => {
                *armed = false;
                true
            }
            _ => false,
        }
    }

    fn on_branch(&mut self, core: usize, instr: &Instr, taken: bool) -> bool {
        // Fast path: nothing queued for the execute stage.
        if self.queues.pending_in(Stage::Execute) == 0 {
            return taken;
        }
        let Some(key) =
            Self::resolve_thread(&mut self.threads, &self.config, &self.current_pcbb, core)
        else {
            return taken;
        };
        // Branch inversion shares the execute-stage timeline but fires on
        // branch *resolution*, which is not itself a counted event: read
        // the counter without bumping (the register-stage convention).
        let (count, ticks_since) = {
            let rec = if self.config.pcb_pointer_cache {
                self.threads.active_mut(core).expect("resolved above")
            } else {
                self.threads
                    .active_mut_uncached(core, self.current_pcbb[core])
                    .expect("resolved above")
            };
            (rec.count(Stage::Execute), rec.ticks_since_activation(self.last_tick))
        };
        let mut fired = Vec::new();
        self.queues.scan(
            Stage::Execute,
            core,
            key.id,
            count,
            ticks_since,
            |spec| spec.behavior == FaultBehavior::InvertBranch,
            |spec| fired.push(*spec),
        );
        let mut t = taken;
        for spec in fired {
            let before = t as u64;
            t = !t;
            self.push_record(Stage::Execute, &spec, 0, Some(instr.to_string()), before, t as u64);
        }
        t
    }

    fn has_cache_lesions(&self) -> bool {
        !self.pending_lesions.is_empty()
    }

    fn take_cache_lesions(&mut self) -> Vec<CacheLesion> {
        std::mem::take(&mut self.pending_lesions)
    }

    fn on_reg_read(&mut self, core: usize, reg: RegRef) {
        if self.watches.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.watches.len() {
            let w = self.watches[i];
            if w.core == core && w.reg == reg {
                self.records[w.record].consumed = true;
                self.watches.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn on_reg_write(&mut self, core: usize, reg: RegRef) {
        if self.watches.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.watches.len() {
            let w = self.watches[i];
            if w.core == core && w.reg == reg {
                self.records[w.record].overwritten = true;
                self.watches.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn on_commit(&mut self, core: usize, now: Ticks, _pc: u64, _instr: &Instr) {
        self.last_tick = now;
        // Advance the register-stage (committed-instruction) counter.
        let rec = if self.config.pcb_pointer_cache {
            self.threads.active_mut(core)
        } else {
            self.threads.active_mut_uncached(core, self.current_pcbb[core])
        };
        if let Some(rec) = rec {
            rec.bump(Stage::Register);
            self.stage_events[Stage::Register.index()] += 1;
        }
    }

    fn on_fi_activate(&mut self, core: usize, now: Ticks, id: u32, pcbb: u64) {
        self.last_tick = now;
        if core < self.current_pcbb.len() {
            self.current_pcbb[core] = pcbb;
        }
        self.threads.toggle(core, id, pcbb, now);
    }

    fn on_context_switch(&mut self, core: usize, new_pcbb: u64) {
        if core < self.current_pcbb.len() {
            self.current_pcbb[core] = new_pcbb;
        }
        self.threads.on_context_switch(core, new_pcbb);
    }

    /// The dormancy horizon (the event-queue idea of gem5's scheduler,
    /// applied to fault arming): walk the queued faults that the *running*
    /// thread on `core` could reach and report how many stage events / ticks
    /// must elapse before the earliest of them can fire. Faults belonging to
    /// other threads or cores are frozen — their counters cannot advance
    /// while this thread runs — and any thread-activation change arrives
    /// through a batch-interrupting passthrough hook, so the horizon stays
    /// valid for the whole sprint.
    fn dormancy(&self, core: usize, now: Ticks) -> Dormancy {
        // Live consumption watches need per-event reg-read/write tracking.
        if !self.watches.is_empty() {
            return Dormancy::Active;
        }
        // An armed skip or a fired-but-unplanted lesion must reach the CPU
        // model on the very next instruction: never elide over it.
        if !self.pending_lesions.is_empty() || self.skip_armed.iter().any(|armed| *armed) {
            return Dormancy::Active;
        }
        if self.queues.pending() == 0 {
            return Dormancy::Dormant;
        }
        let rec = if self.config.pcb_pointer_cache {
            self.threads.active(core)
        } else {
            self.threads.active_uncached(self.current_pcbb.get(core).copied().unwrap_or(0))
        };
        // No activated thread running: every queued fault is frozen.
        let Some(rec) = rec else { return Dormancy::Dormant };
        let mut events = u64::MAX;
        let mut ticks = u64::MAX;
        for q in self.queues.iter() {
            if q.spec.thread != rec.id || q.spec.location.core() != core {
                continue;
            }
            match q.spec.timing {
                FaultTiming::Instructions(start) => {
                    let served = rec.count(q.spec.stage());
                    if served >= start {
                        // Armed: fires on the next matching event.
                        return Dormancy::Active;
                    }
                    events = events.min(start - served);
                }
                FaultTiming::Ticks(_) => {
                    let since = rec.ticks_since_activation(now);
                    let (start, _) = q.spec.window();
                    if since >= start {
                        // In (or past) its window: the fully hooked path
                        // fires it — or lazily expires it, exactly as the
                        // queue scan always has.
                        return Dormancy::Active;
                    }
                    ticks = ticks.min(start - since);
                }
            }
        }
        if events == u64::MAX && ticks == u64::MAX {
            Dormancy::Dormant
        } else {
            Dormancy::Quiet { events, ticks }
        }
    }

    /// Bulk equivalent of the per-event counter maintenance: credit the
    /// batch to the running thread's stage counters and the engine's global
    /// profiling counters, gated on thread activation exactly like
    /// `stage_event`/`on_commit`. Activation can only change at batch
    /// boundaries (the passthrough hooks flush first), so one gate covers
    /// the whole batch.
    fn absorb_elided(&mut self, core: usize, now: Option<Ticks>, batch: &ElisionBatch) {
        if let Some(n) = now {
            self.last_tick = n;
        }
        let rec = if self.config.pcb_pointer_cache {
            self.threads.active_mut(core)
        } else {
            let pcbb = self.current_pcbb.get(core).copied().unwrap_or(0);
            self.threads.active_mut_uncached(core, pcbb)
        };
        if let Some(rec) = rec {
            for (i, n) in batch.stage_events.iter().enumerate() {
                rec.stage_counts[i] += n;
                self.stage_events[i] += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultBehavior, FaultTiming};

    fn engine_with(line: &str) -> GemFiEngine {
        GemFiEngine::new(line.parse().expect("valid fault line"))
    }

    #[test]
    fn inactive_thread_sees_no_injection() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1");
        // No fi_activate yet: value passes through untouched.
        let nop = Instr::FiReadInit;
        assert_eq!(e.on_execute_result(0, &nop, 42), 42);
        assert!(e.records().is_empty());
    }

    #[test]
    fn execute_fault_fires_at_the_right_event() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:3 Flip:0 Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let nop = Instr::FiReadInit;
        assert_eq!(e.on_execute_result(0, &nop, 10), 10); // event 1
        assert_eq!(e.on_execute_result(0, &nop, 10), 10); // event 2
        assert_eq!(e.on_execute_result(0, &nop, 10), 11); // event 3: flip bit 0
        assert_eq!(e.on_execute_result(0, &nop, 10), 10); // exhausted
        assert_eq!(e.records().len(), 1);
        assert!(e.records()[0].propagated());
    }

    #[test]
    fn fetch_fault_corrupts_the_word_and_disassembles() {
        let mut e = engine_with(
            "FetchedInstructionInjectedFault Inst:1 Flip:26 Threadid:0 system.cpu0 occ:1",
        );
        e.on_fi_activate(0, 0, 0, 0x4000);
        let w = RawInstr(0);
        let out = e.on_fetch(0, 0x1_0000, w);
        assert_eq!(out.0, 1 << 26);
        assert_eq!(e.records().len(), 1);
        assert!(e.records()[0].instr.is_some());
        assert_eq!(e.records()[0].pc, 0x1_0000);
    }

    #[test]
    fn decode_fault_only_touches_selector_fields() {
        let mut e =
            engine_with("DecodeStageInjectedFault Inst:1 AllOne Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let w = RawInstr(0);
        let out = e.on_decode(0, w);
        // All selector bits set; opcode/function/displacement bits untouched.
        assert_eq!(out.ra(), 0x1f);
        assert_eq!(out.rb(), 0x1f);
        assert_eq!(out.rc(), 0x1f);
        assert_eq!(out.opcode(), 0);
        assert_eq!(out.function(), 0);
    }

    #[test]
    fn register_fault_applies_at_boundary_and_tracks_consumption() {
        let mut e =
            engine_with("RegisterInjectedFault Inst:0 Flip:21 Threadid:0 system.cpu0 occ:1 int 1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let mut arch = ArchState::new(0x1_0000);
        arch.pcbb = 0x4000;
        arch.regs.write_int(IntReg::from_bits(1), 5);
        e.before_instruction(0, 1, &mut arch);
        assert_eq!(arch.regs.read_int(IntReg::from_bits(1)), 5 | (1 << 21));
        assert_eq!(e.records().len(), 1);
        assert!(!e.records()[0].consumed);

        // Reading the register marks the fault consumed.
        e.on_reg_read(0, RegRef::Int(IntReg::from_bits(1)));
        assert!(e.records()[0].consumed);
        assert!(e.any_propagated());
    }

    #[test]
    fn overwrite_before_read_is_non_propagated() {
        let mut e =
            engine_with("RegisterInjectedFault Inst:0 Flip:0 Threadid:0 system.cpu0 occ:1 int 2");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let mut arch = ArchState::new(0);
        arch.pcbb = 0x4000;
        e.before_instruction(0, 1, &mut arch);
        e.on_reg_write(0, RegRef::Int(IntReg::from_bits(2)));
        assert!(e.records()[0].overwritten);
        assert!(!e.records()[0].consumed);
        assert!(!e.any_propagated());
    }

    #[test]
    fn pc_fault_redirects_control() {
        let mut e = engine_with("PCInjectedFault Inst:0 Set:0x2_0000 Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let mut arch = ArchState::new(0x1_0000);
        arch.pcbb = 0x4000;
        e.before_instruction(0, 1, &mut arch);
        assert_eq!(arch.pc, 0x2_0000);
    }

    #[test]
    fn toggling_twice_deactivates() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        e.on_fi_activate(0, 10, 0, 0x4000);
        assert_eq!(e.active_threads(), 0);
        let nop = Instr::FiReadInit;
        assert_eq!(e.on_execute_result(0, &nop, 9), 9);
        assert!(e.records().is_empty());
    }

    #[test]
    fn thread_id_must_match_the_spec() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:1 Flip:0 Threadid:5 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 3, 0x4000); // activates thread id 3
        let nop = Instr::FiReadInit;
        assert_eq!(e.on_execute_result(0, &nop, 8), 8);
        assert_eq!(e.pending_faults(), 1, "fault for thread 5 must stay queued");
    }

    #[test]
    fn context_switch_gates_injection() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:2 Flip:0 Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let nop = Instr::FiReadInit;
        assert_eq!(e.on_execute_result(0, &nop, 3), 3); // event 1: too early
                                                        // Switch to a thread that never activated injection: its events do
                                                        // not advance the target thread's counters.
        e.on_context_switch(0, 0x4400);
        assert_eq!(e.on_execute_result(0, &nop, 3), 3);
        // Switch back: the counter resumes and the fault fires at event 2.
        e.on_context_switch(0, 0x4000);
        assert_eq!(e.on_execute_result(0, &nop, 3), 2);
    }

    #[test]
    fn uncached_lookup_behaves_identically() {
        for cache in [true, false] {
            let cfg = EngineConfig { pcb_pointer_cache: cache, cores: 1 };
            let faults: FaultConfig =
                "ExecutionStageInjectedFault Inst:2 Flip:1 Threadid:0 system.cpu0 occ:1"
                    .parse()
                    .unwrap();
            let mut e = GemFiEngine::with_config(faults, cfg);
            e.on_fi_activate(0, 0, 0, 0x4000);
            let nop = Instr::FiReadInit;
            assert_eq!(e.on_execute_result(0, &nop, 0), 0);
            assert_eq!(e.on_execute_result(0, &nop, 0), 2, "cache={cache}");
        }
    }

    #[test]
    fn reset_reinstalls_configuration() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let nop = Instr::FiReadInit;
        e.on_execute_result(0, &nop, 0);
        assert_eq!(e.records().len(), 1);
        e.reset(
            "MemoryInjectedFault Inst:1 AllOne Threadid:0 system.cpu0 occ:1 load".parse().unwrap(),
        );
        assert!(e.records().is_empty());
        assert_eq!(e.active_threads(), 0);
        assert_eq!(e.pending_faults(), 1);
    }

    #[test]
    fn mem_target_filter_distinguishes_loads_and_stores() {
        let mut e =
            engine_with("MemoryInjectedFault Inst:1 AllOne Threadid:0 system.cpu0 occ:1 store");
        e.on_fi_activate(0, 0, 0, 0x4000);
        // A load is a memory event but must not trigger the store-targeted
        // fault; the armed fault fires on the next *store*.
        assert_eq!(e.on_mem_load(0, 0x100, 7), 7);
        assert_eq!(e.on_mem_store(0, 0x100, 7), u64::MAX, "fires on the next store");
        assert_eq!(e.pending_faults(), 0);
    }

    #[test]
    fn dormancy_horizon_tracks_the_event_distance() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:100 Flip:0 Threadid:0 system.cpu0 occ:1");
        // Before activation nothing can reach the fault: fully dormant.
        assert_eq!(FaultHooks::dormancy(&e, 0, 0), Dormancy::Dormant);
        e.on_fi_activate(0, 0, 0, 0x4000);
        assert_eq!(
            FaultHooks::dormancy(&e, 0, 0),
            Dormancy::Quiet { events: 100, ticks: u64::MAX }
        );

        // Absorbing an elided batch must shrink the horizon exactly as the
        // same events arriving through the per-event hooks would have.
        let mut batch = ElisionBatch::default();
        batch.stage_events[Stage::Execute.index()] = 30;
        e.absorb_elided(0, Some(7), &batch);
        assert_eq!(FaultHooks::dormancy(&e, 0, 7), Dormancy::Quiet { events: 70, ticks: u64::MAX });

        // ... so the fault still fires on precisely the event the horizon
        // names: the 70th future execute event.
        let nop = Instr::FiReadInit;
        for _ in 0..69 {
            assert_eq!(e.on_execute_result(0, &nop, 8), 8);
        }
        // One event from firing: fewer than 1 further event is safe.
        assert_eq!(FaultHooks::dormancy(&e, 0, 7), Dormancy::Quiet { events: 1, ticks: u64::MAX });
        assert_eq!(e.on_execute_result(0, &nop, 8), 9, "fires at the horizon");
        assert_eq!(FaultHooks::dormancy(&e, 0, 7), Dormancy::Dormant, "queue drained");
    }

    #[test]
    fn dormancy_is_active_while_a_watch_is_outstanding() {
        let mut e =
            engine_with("RegisterInjectedFault Inst:0 Flip:0 Threadid:0 system.cpu0 occ:1 int 3");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let mut arch = ArchState::new(0);
        arch.pcbb = 0x4000;
        e.before_instruction(0, 1, &mut arch);
        // The fault fired, but the consumption monitor still watches r3:
        // elision would miss the read/write that classifies propagation.
        assert_eq!(e.pending_faults(), 0);
        assert_eq!(FaultHooks::dormancy(&e, 0, 1), Dormancy::Active);
        e.on_reg_write(0, RegRef::Int(IntReg::from_bits(3)));
        assert_eq!(FaultHooks::dormancy(&e, 0, 1), Dormancy::Dormant, "watch retired");
    }

    #[test]
    fn dormancy_respects_tick_timed_faults() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Tick:500 Flip:0 Threadid:0 system.cpu0 occ:4");
        e.on_fi_activate(0, 100, 0, 0x4000);
        assert_eq!(
            FaultHooks::dormancy(&e, 0, 100),
            Dormancy::Quiet { events: u64::MAX, ticks: 500 }
        );
        assert_eq!(
            FaultHooks::dormancy(&e, 0, 350),
            Dormancy::Quiet { events: u64::MAX, ticks: 250 }
        );
        // Inside (and past) the window the horizon is gone, even before the
        // lazy queue scan prunes an expired entry.
        assert_eq!(FaultHooks::dormancy(&e, 0, 600), Dormancy::Active);
        assert_eq!(FaultHooks::dormancy(&e, 0, 10_000), Dormancy::Active);
    }

    #[test]
    fn dormancy_ignores_faults_of_other_threads() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:5 Flip:0 Threadid:9 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000); // thread 0, not the fault's target
        assert_eq!(e.pending_faults(), 1);
        assert_eq!(FaultHooks::dormancy(&e, 0, 0), Dormancy::Dormant);
    }

    #[test]
    fn fire_distance_tracks_a_single_spec() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Inst:40 Flip:0 Threadid:0 system.cpu0 occ:1");
        let spec = *e.queues.iter().next().map(|q| &q.spec).unwrap();
        // Before activation the full offset is a lower bound.
        assert_eq!(
            e.fire_distance(0, 0, &spec),
            FireDistance::Quiet { events: 40, ticks: u64::MAX }
        );
        e.on_fi_activate(0, 0, 0, 0x4000);
        let nop = Instr::FiReadInit;
        for _ in 0..10 {
            e.on_execute_result(0, &nop, 1);
        }
        // Activated: the distance is exact and shrinks with served events.
        assert_eq!(
            e.fire_distance(0, 0, &spec),
            FireDistance::Quiet { events: 30, ticks: u64::MAX }
        );
        for _ in 0..30 {
            e.on_execute_result(0, &nop, 1);
        }
        // 40 served >= start 40: armed (and in fact it just fired).
        assert_eq!(e.fire_distance(0, 0, &spec), FireDistance::Armed);
        // Wrong core: unreachable.
        assert_eq!(
            e.fire_distance(1, 0, &spec),
            FireDistance::Quiet { events: u64::MAX, ticks: u64::MAX }
        );
    }

    #[test]
    fn fire_distance_handles_tick_timed_and_immediate_specs() {
        let mut e =
            engine_with("ExecutionStageInjectedFault Tick:500 Flip:0 Threadid:0 system.cpu0 occ:4");
        let tick_spec = *e.queues.iter().next().map(|q| &q.spec).unwrap();
        assert_eq!(
            e.fire_distance(0, 0, &tick_spec),
            FireDistance::Quiet { events: u64::MAX, ticks: 500 }
        );
        e.on_fi_activate(0, 100, 0, 0x4000);
        assert_eq!(
            e.fire_distance(0, 350, &tick_spec),
            FireDistance::Quiet { events: u64::MAX, ticks: 250 }
        );
        assert_eq!(e.fire_distance(0, 600, &tick_spec), FireDistance::Armed);

        // An Inst:0 spec for an unactivated thread can fire the moment the
        // thread activates: never quiet.
        let immediate = FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 1 },
            thread: 9,
            timing: FaultTiming::Instructions(0),
            behavior: FaultBehavior::AllZero,
            occurrences: 1,
        };
        assert_eq!(e.fire_distance(0, 0, &immediate), FireDistance::Armed);
    }

    #[test]
    fn forked_engine_matches_a_carried_one() {
        // An engine that carried the spec from the start, and a fault-free
        // trunk engine forked with the same spec at the same point, must be
        // indistinguishable from here on.
        let line = "ExecutionStageInjectedFault Inst:20 Flip:3 Threadid:0 system.cpu0 occ:1";
        let mut carried = engine_with(line);
        let mut trunk = GemFiEngine::new(FaultConfig::empty());
        let nop = Instr::FiReadInit;
        for e in [&mut carried, &mut trunk] {
            e.on_fi_activate(0, 5, 0, 0x4000);
            for _ in 0..12 {
                e.on_execute_result(0, &nop, 7);
            }
        }
        let mut forked = trunk.fork_with_faults(line.parse().unwrap());
        assert_eq!(forked.pending_faults(), carried.pending_faults());
        assert_eq!(forked.stage_events(), carried.stage_events());
        for _ in 0..7 {
            assert_eq!(forked.on_execute_result(0, &nop, 7), carried.on_execute_result(0, &nop, 7));
        }
        // Event 20 since activation: both fire identically.
        assert_eq!(forked.on_execute_result(0, &nop, 7), 7 ^ (1 << 3));
        assert_eq!(carried.on_execute_result(0, &nop, 7), 7 ^ (1 << 3));
        assert_eq!(forked.records(), carried.records());
    }

    #[test]
    fn cache_fault_plants_a_lesion_and_retires() {
        let mut e = engine_with(
            "CacheInjectedFault Inst:2 Flip:3 Threadid:0 system.cpu0 occ:perm l1d data set:5 way:1",
        );
        e.on_fi_activate(0, 0, 0, 0x4000);
        assert!(!e.has_cache_lesions());
        // First memory event: too early; second fires.
        assert_eq!(e.on_mem_load(0, 0x100, 7), 7);
        assert_eq!(e.on_mem_load(0, 0x108, 9), 9, "firing transaction passes through");
        assert!(e.has_cache_lesions());
        // One-shot: the spec retires at its first fire even though the
        // lesion itself is permanent.
        assert_eq!(e.pending_faults(), 0);
        let lesions = e.take_cache_lesions();
        assert_eq!(lesions.len(), 1);
        assert_eq!(lesions[0].level, gemfi_mem::CacheLevel::L1D);
        assert_eq!(lesions[0].target, LesionTarget::Line { set: 5, way: 1 });
        assert_eq!(lesions[0].kind, LesionKind::Data);
        assert_eq!(lesions[0].effect.xor_mask, 1 << 3);
        assert_eq!(lesions[0].remaining, crate::spec::OCC_PERMANENT);
        assert!(!e.has_cache_lesions(), "drained");
        assert_eq!(e.records().len(), 1);
    }

    #[test]
    fn l1i_cache_fault_fires_on_fetch_events() {
        let mut e = engine_with(
            "CacheInjectedFault Inst:1 AllOne Threadid:0 system.cpu0 occ:1 l1i way:0 mbu:row:0",
        );
        e.on_fi_activate(0, 0, 0, 0x4000);
        let w = RawInstr(0x1234_5678);
        assert_eq!(e.on_fetch(0, 0x1_0000, w), w, "firing word passes through");
        assert!(e.has_cache_lesions());
        let lesions = e.take_cache_lesions();
        assert_eq!(lesions[0].level, gemfi_mem::CacheLevel::L1I);
        assert_eq!(lesions[0].effect.set_mask, 0xff, "row MBU pattern confines the effect");
        assert_eq!(lesions[0].remaining, 1);
    }

    #[test]
    fn skip_fault_arms_the_flag_once() {
        let mut e =
            engine_with("FetchedInstructionInjectedFault Inst:2 Skip Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        let w = RawInstr(0x1234_5678);
        assert_eq!(e.on_fetch(0, 0x1_0000, w), w);
        assert!(!e.take_skip(0), "too early");
        assert_eq!(e.on_fetch(0, 0x1_0004, w), w, "skip does not corrupt the word");
        assert!(e.take_skip(0), "armed at event 2");
        assert!(!e.take_skip(0), "consuming disarms");
        assert_eq!(e.records().len(), 1);
        assert!(e.records()[0].propagated(), "recorded as word suppressed");
    }

    #[test]
    fn invert_branch_fires_on_branch_resolution_only() {
        let mut e = engine_with(
            "ExecutionStageInjectedFault Inst:2 InvertBranch Threadid:0 system.cpu0 occ:1",
        );
        e.on_fi_activate(0, 0, 0, 0x4000);
        let nop = Instr::FiReadInit;
        // Execute-stage value events never fire an InvertBranch fault...
        assert_eq!(e.on_execute_result(0, &nop, 42), 42); // event 1
        assert_eq!(e.on_execute_result(0, &nop, 42), 42); // event 2
        assert_eq!(e.pending_faults(), 1, "still armed");
        // ...only branch resolution does, without bumping the counter.
        assert!(!e.on_branch(0, &nop, true), "inverted");
        assert_eq!(e.pending_faults(), 0);
        assert!(e.on_branch(0, &nop, true), "exhausted: passes through");
        assert_eq!(e.records().len(), 1);
        assert!(e.records()[0].propagated());
    }

    #[test]
    fn pending_lesion_and_armed_skip_force_active_dormancy() {
        let mut e = engine_with(
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1 l1d data set:0 way:0",
        );
        e.on_fi_activate(0, 0, 0, 0x4000);
        e.on_mem_load(0, 0x100, 1);
        assert!(e.has_cache_lesions());
        assert_eq!(FaultHooks::dormancy(&e, 0, 0), Dormancy::Active, "lesion awaits planting");
        e.take_cache_lesions();
        assert_eq!(FaultHooks::dormancy(&e, 0, 0), Dormancy::Dormant);

        let mut e =
            engine_with("FetchedInstructionInjectedFault Inst:1 Skip Threadid:0 system.cpu0 occ:1");
        e.on_fi_activate(0, 0, 0, 0x4000);
        e.on_fetch(0, 0x1_0000, RawInstr(0));
        assert_eq!(FaultHooks::dormancy(&e, 0, 0), Dormancy::Active, "skip armed");
        assert!(e.take_skip(0));
        assert_eq!(FaultHooks::dormancy(&e, 0, 0), Dormancy::Dormant);
    }

    #[test]
    fn permanent_register_fault_reasserts() {
        let spec = FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 4 },
            thread: 0,
            timing: FaultTiming::Instructions(0),
            behavior: FaultBehavior::AllZero,
            occurrences: crate::spec::OCC_PERMANENT,
        };
        let mut e = GemFiEngine::new(FaultConfig::from_specs(vec![spec]));
        e.on_fi_activate(0, 0, 0, 0x4000);
        let mut arch = ArchState::new(0);
        arch.pcbb = 0x4000;
        for i in 0..5 {
            arch.regs.write_int(IntReg::from_bits(4), 99);
            e.before_instruction(0, i, &mut arch);
            assert_eq!(arch.regs.read_int(IntReg::from_bits(4)), 0, "boundary {i}");
        }
        assert!(e.pending_faults() > 0, "permanent fault stays queued");
    }
}
