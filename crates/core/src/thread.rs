//! Thread tracking: `ThreadEnabledFault` objects keyed by PCB address.
//!
//! Sec. III-C: "Threads that have enabled fault injection are internally
//! represented as instances of a class (`ThreadEnabledFault`), containing
//! all per-thread information necessary for fault injection, such as the
//! number of instructions the thread has executed on each core. Each
//! simulated core has a pointer to a ThreadEnabledFault object. […] Threads
//! are identified at the hardware/simulator level by their unique Process
//! Control Block (PCB) address. […] Monitoring context switches allows
//! GemFI to eliminate the overhead of checking the fault injection status
//! of the executing thread in the hash table on each simulated clock tick."
//!
//! The per-core pointer cache is reproduced (as a per-core index into the
//! thread arena) and can be disabled via
//! [`crate::EngineConfig::pcb_pointer_cache`] for the ablation benchmark.

use crate::spec::Stage;
use std::collections::HashMap;

/// Per-thread fault-injection state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadEnabledFault {
    /// The identifier passed to `fi_activate_inst(id)` — the `Threadid:` a
    /// fault spec matches against.
    pub id: u32,
    /// PCB base address of the thread (its hardware-level identity).
    pub pcbb: u64,
    /// Tick at which injection was activated (origin for `Tick:` timing).
    pub activated_at: u64,
    /// Instructions served at each pipeline stage since activation.
    pub stage_counts: [u64; 5],
}

impl ThreadEnabledFault {
    /// Fresh state for a thread activating injection now.
    pub fn new(id: u32, pcbb: u64, now: u64) -> ThreadEnabledFault {
        ThreadEnabledFault { id, pcbb, activated_at: now, stage_counts: [0; 5] }
    }

    /// The stage-served counter for `stage`.
    pub fn count(&self, stage: Stage) -> u64 {
        self.stage_counts[stage.index()]
    }

    /// Increments and returns the new count for `stage`.
    pub fn bump(&mut self, stage: Stage) -> u64 {
        self.stage_counts[stage.index()] += 1;
        self.stage_counts[stage.index()]
    }

    /// Ticks elapsed since this thread activated injection.
    pub fn ticks_since_activation(&self, now: u64) -> u64 {
        now.saturating_sub(self.activated_at)
    }
}

/// The thread table: an arena of [`ThreadEnabledFault`] records, a PCB-keyed
/// hash index, and the per-core pointer cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTable {
    arena: Vec<ThreadEnabledFault>,
    by_pcbb: HashMap<u64, usize>,
    /// Per-core cached index of the running thread's record (`None` when the
    /// running thread has not activated injection).
    core_active: Vec<Option<usize>>,
}

impl ThreadTable {
    /// A table for `cores` hardware contexts.
    pub fn new(cores: usize) -> ThreadTable {
        ThreadTable { arena: Vec::new(), by_pcbb: HashMap::new(), core_active: vec![None; cores] }
    }

    /// Number of threads currently enabled for injection.
    pub fn active_threads(&self) -> usize {
        self.by_pcbb.len()
    }

    /// Handles `fi_activate_inst(id)`: successive occurrences toggle
    /// injection for the thread (Sec. III-A). Returns `true` if the thread
    /// is now active.
    pub fn toggle(&mut self, core: usize, id: u32, pcbb: u64, now: u64) -> bool {
        if let Some(&idx) = self.by_pcbb.get(&pcbb) {
            // Deactivation: drop the record, compact the arena.
            self.by_pcbb.remove(&pcbb);
            self.arena.swap_remove(idx);
            if idx < self.arena.len() {
                // The swapped-in record moved; re-index it.
                let moved_pcbb = self.arena[idx].pcbb;
                self.by_pcbb.insert(moved_pcbb, idx);
                for slot in &mut self.core_active {
                    if *slot == Some(self.arena.len()) {
                        *slot = Some(idx);
                    }
                }
            }
            self.core_active[core] = None;
            false
        } else {
            let idx = self.arena.len();
            self.arena.push(ThreadEnabledFault::new(id, pcbb, now));
            self.by_pcbb.insert(pcbb, idx);
            self.core_active[core] = Some(idx);
            true
        }
    }

    /// Context-switch notification: re-resolves the per-core cached pointer
    /// (the Sec. III-C optimization point).
    pub fn on_context_switch(&mut self, core: usize, new_pcbb: u64) {
        self.core_active[core] = self.by_pcbb.get(&new_pcbb).copied();
    }

    /// The running thread's record on `core`, via the cached pointer.
    pub fn active_mut(&mut self, core: usize) -> Option<&mut ThreadEnabledFault> {
        let idx = self.core_active.get(core).copied().flatten()?;
        Some(&mut self.arena[idx])
    }

    /// The running thread's record, resolved through the hash table instead
    /// of the cache (the un-optimized path, for the ablation).
    pub fn active_mut_uncached(
        &mut self,
        core: usize,
        current_pcbb: u64,
    ) -> Option<&mut ThreadEnabledFault> {
        let _ = core;
        let idx = *self.by_pcbb.get(&current_pcbb)?;
        Some(&mut self.arena[idx])
    }

    /// Read-only view of the running thread's record.
    pub fn active(&self, core: usize) -> Option<&ThreadEnabledFault> {
        let idx = self.core_active.get(core).copied().flatten()?;
        Some(&self.arena[idx])
    }

    /// Read-only hash-table resolution (the uncached-path twin of
    /// [`ThreadTable::active`], for horizon computation under the ablation
    /// configuration).
    pub fn active_uncached(&self, current_pcbb: u64) -> Option<&ThreadEnabledFault> {
        let idx = *self.by_pcbb.get(&current_pcbb)?;
        Some(&self.arena[idx])
    }

    /// Looks a thread up by its `fi_activate_inst(id)` identity rather than
    /// its PCB address. Linear over the (tiny) arena — this is a planning
    /// query, not a per-event path; fork-at-injection uses it to ask how far
    /// a specific spec's thread is from its firing point.
    pub fn by_id(&self, id: u32) -> Option<&ThreadEnabledFault> {
        self.arena.iter().find(|rec| rec.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_activates_and_deactivates() {
        let mut t = ThreadTable::new(1);
        assert!(t.toggle(0, 7, 0x4000, 100));
        assert_eq!(t.active(0).unwrap().id, 7);
        assert_eq!(t.active_threads(), 1);
        // Second occurrence toggles off.
        assert!(!t.toggle(0, 7, 0x4000, 200));
        assert!(t.active(0).is_none());
        assert_eq!(t.active_threads(), 0);
    }

    #[test]
    fn context_switch_resolves_pointer() {
        let mut t = ThreadTable::new(1);
        t.toggle(0, 0, 0x4000, 0);
        t.on_context_switch(0, 0x4400); // switched-in thread not activated
        assert!(t.active(0).is_none());
        t.on_context_switch(0, 0x4000); // back to the activated thread
        assert_eq!(t.active(0).unwrap().pcbb, 0x4000);
    }

    #[test]
    fn swap_remove_reindexes_moved_record() {
        let mut t = ThreadTable::new(2);
        t.toggle(0, 0, 0x4000, 0);
        t.on_context_switch(1, 0x4400);
        t.toggle(1, 1, 0x4400, 0);
        // Deactivate the first; the second's record moves into slot 0.
        t.toggle(0, 0, 0x4000, 10);
        assert_eq!(t.active_threads(), 1);
        assert_eq!(t.active(1).unwrap().pcbb, 0x4400);
        assert_eq!(t.active_mut_uncached(1, 0x4400).unwrap().id, 1);
    }

    #[test]
    fn stage_counters_are_independent() {
        let mut rec = ThreadEnabledFault::new(0, 0x4000, 50);
        assert_eq!(rec.bump(Stage::Fetch), 1);
        assert_eq!(rec.bump(Stage::Fetch), 2);
        assert_eq!(rec.bump(Stage::Execute), 1);
        assert_eq!(rec.count(Stage::Fetch), 2);
        assert_eq!(rec.count(Stage::Memory), 0);
        assert_eq!(rec.ticks_since_activation(80), 30);
    }

    #[test]
    fn cached_and_uncached_paths_agree() {
        let mut t = ThreadTable::new(1);
        t.toggle(0, 3, 0x5000, 0);
        let cached = t.active_mut(0).unwrap().id;
        let uncached = t.active_mut_uncached(0, 0x5000).unwrap().id;
        assert_eq!(cached, uncached);
    }
}
