//! Experiment outcome classes (Sec. IV-B-1).

use std::fmt;
use std::str::FromStr;

/// The classification of one fault-injection experiment.
///
/// "The outcome of each experiment can be classified in the following
/// categories: crashed, non propagated, strictly correct result, correct
/// result and SDC (Silent Data Corruption)."
///
/// One class is ours, not the paper's: [`Outcome::Infrastructure`] marks an
/// experiment whose *harness* failed — the worker crashed, hung past its
/// lease, or was aborted by the campaign watchdog — after exhausting its
/// retries. It says nothing about the guest's resilience, so it is
/// tabulated separately instead of polluting the Crashed bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The experiment failed to terminate successfully (trap or hang).
    Crashed,
    /// The fault did not manifest as an error (e.g. the corrupted register
    /// was dead or overwritten before use).
    NonPropagated,
    /// Output bit-wise identical to the fault-free execution.
    StrictlyCorrect,
    /// Output within the application's acceptable quality margin, though not
    /// bit-wise identical.
    Correct,
    /// Terminated normally but with an unacceptable result.
    Sdc,
    /// The experiment infrastructure failed (worker panic, expired lease, or
    /// watchdog abort) and retries were exhausted; the guest's behavior is
    /// unknown.
    Infrastructure,
}

impl Outcome {
    /// All outcomes, chart order (the paper's five Fig. 5 classes, then the
    /// infrastructure-failure bucket).
    pub const ALL: [Outcome; 6] = [
        Outcome::Crashed,
        Outcome::NonPropagated,
        Outcome::StrictlyCorrect,
        Outcome::Correct,
        Outcome::Sdc,
        Outcome::Infrastructure,
    ];

    /// Dense index for tabulation.
    pub fn index(self) -> usize {
        match self {
            Outcome::Crashed => 0,
            Outcome::NonPropagated => 1,
            Outcome::StrictlyCorrect => 2,
            Outcome::Correct => 3,
            Outcome::Sdc => 4,
            Outcome::Infrastructure => 5,
        }
    }

    /// Whether the run produced an acceptable result (the paper's
    /// *Acceptable* series in Fig. 6: correct ∪ strictly correct; runs where
    /// the fault never propagated are bit-identical and count as well).
    pub fn is_acceptable(self) -> bool {
        matches!(self, Outcome::StrictlyCorrect | Outcome::Correct | Outcome::NonPropagated)
    }

    /// Whether the class describes the guest's behavior at all (false only
    /// for [`Outcome::Infrastructure`]).
    pub fn is_experiment_outcome(self) -> bool {
        self != Outcome::Infrastructure
    }

    /// The canonical name, stable across releases — the campaign journal
    /// stores outcomes by this name and replays them on resume.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Crashed => "crashed",
            Outcome::NonPropagated => "non-propagated",
            Outcome::StrictlyCorrect => "strictly-correct",
            Outcome::Correct => "correct",
            Outcome::Sdc => "sdc",
            Outcome::Infrastructure => "infrastructure",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Outcome {
    type Err = String;

    fn from_str(s: &str) -> Result<Outcome, String> {
        Outcome::ALL
            .into_iter()
            .find(|o| o.name() == s)
            .ok_or_else(|| format!("unknown outcome `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, o) in Outcome::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
    }

    #[test]
    fn acceptability_matches_fig6_definition() {
        assert!(Outcome::StrictlyCorrect.is_acceptable());
        assert!(Outcome::Correct.is_acceptable());
        assert!(Outcome::NonPropagated.is_acceptable());
        assert!(!Outcome::Crashed.is_acceptable());
        assert!(!Outcome::Sdc.is_acceptable());
        assert!(!Outcome::Infrastructure.is_acceptable());
    }

    #[test]
    fn infrastructure_is_not_a_guest_outcome() {
        assert!(!Outcome::Infrastructure.is_experiment_outcome());
        assert_eq!(Outcome::ALL.iter().filter(|o| o.is_experiment_outcome()).count(), 5);
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for o in Outcome::ALL {
            assert_eq!(o.name().parse::<Outcome>().unwrap(), o);
            assert_eq!(o.to_string(), o.name());
        }
        assert!("bogus".parse::<Outcome>().is_err());
    }
}
