//! Experiment outcome classes (Sec. IV-B-1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The classification of one fault-injection experiment.
///
/// "The outcome of each experiment can be classified in the following
/// categories: crashed, non propagated, strictly correct result, correct
/// result and SDC (Silent Data Corruption)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The experiment failed to terminate successfully (trap or hang).
    Crashed,
    /// The fault did not manifest as an error (e.g. the corrupted register
    /// was dead or overwritten before use).
    NonPropagated,
    /// Output bit-wise identical to the fault-free execution.
    StrictlyCorrect,
    /// Output within the application's acceptable quality margin, though not
    /// bit-wise identical.
    Correct,
    /// Terminated normally but with an unacceptable result.
    Sdc,
}

impl Outcome {
    /// All outcomes, chart order (matches the Fig. 5 stacking).
    pub const ALL: [Outcome; 5] = [
        Outcome::Crashed,
        Outcome::NonPropagated,
        Outcome::StrictlyCorrect,
        Outcome::Correct,
        Outcome::Sdc,
    ];

    /// Dense index for tabulation.
    pub fn index(self) -> usize {
        match self {
            Outcome::Crashed => 0,
            Outcome::NonPropagated => 1,
            Outcome::StrictlyCorrect => 2,
            Outcome::Correct => 3,
            Outcome::Sdc => 4,
        }
    }

    /// Whether the run produced an acceptable result (the paper's
    /// *Acceptable* series in Fig. 6: correct ∪ strictly correct; runs where
    /// the fault never propagated are bit-identical and count as well).
    pub fn is_acceptable(self) -> bool {
        matches!(
            self,
            Outcome::StrictlyCorrect | Outcome::Correct | Outcome::NonPropagated
        )
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Crashed => write!(f, "crashed"),
            Outcome::NonPropagated => write!(f, "non-propagated"),
            Outcome::StrictlyCorrect => write!(f, "strictly-correct"),
            Outcome::Correct => write!(f, "correct"),
            Outcome::Sdc => write!(f, "sdc"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, o) in Outcome::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
    }

    #[test]
    fn acceptability_matches_fig6_definition() {
        assert!(Outcome::StrictlyCorrect.is_acceptable());
        assert!(Outcome::Correct.is_acceptable());
        assert!(Outcome::NonPropagated.is_acceptable());
        assert!(!Outcome::Crashed.is_acceptable());
        assert!(!Outcome::Sdc.is_acceptable());
    }
}
