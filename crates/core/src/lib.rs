//! GemFI — configurable architectural fault injection for `ghost5`.
//!
//! This crate is the reproduction of the paper's contribution: a fault
//! injection layer over a cycle-accurate full-system simulator, following
//! the generic behavioural processor fault model of Yount & Siewiorek. It
//! provides:
//!
//! * a **fault specification language** ([`spec`], [`config`]) with the four
//!   attributes of Sec. III — *Location*, *Thread*, *Time*, *Behavior* —
//!   plus occurrence counts for transient/intermittent/permanent faults,
//!   parsed from input files in the style of the paper's Listing 1:
//!
//!   ```text
//!   RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu0 occ:1 int 1
//!   ```
//!
//! * **five per-pipeline-stage fault queues** ([`queues`]), sorted by fault
//!   time, scanned as instructions are served at each stage (Sec. III-C);
//!
//! * **thread tracking by PCB address** ([`thread`]): threads opt in with
//!   the `fi_activate_inst(id)` pseudo-op; GemFI keys its
//!   `ThreadEnabledFault` state on the PCB base and refreshes a per-core
//!   pointer cache on context switches rather than hashing every tick (the
//!   optimization Sec. III-C describes — reproducible here via
//!   [`EngineConfig::pcb_pointer_cache`]);
//!
//! * the **injection engine** ([`engine::GemFiEngine`]) implementing the
//!   simulator's [`FaultHooks`] surface: fetched-instruction corruption,
//!   decode register-selection corruption, execute-stage result corruption,
//!   memory-transaction corruption, and register/PC corruption at
//!   instruction boundaries, each producing an [`InjectionRecord`] with the
//!   disassembly of the affected instruction for post-mortem correlation;
//!
//! * **outcome classes** ([`outcome::Outcome`]) for campaign
//!   classification, and a **Vdd scaling model** ([`vdd`]) for the paper's
//!   future-work direction (supply voltage vs. error rate).
//!
//! [`FaultHooks`]: gemfi_cpu::FaultHooks
//!
//! # Example
//!
//! ```
//! use gemfi::{FaultConfig, GemFiEngine};
//!
//! let config: FaultConfig =
//!     "RegisterInjectedFault Inst:10 Flip:21 Threadid:0 system.cpu0 occ:1 int 1"
//!         .parse()
//!         .expect("valid fault description");
//! let engine = GemFiEngine::new(config);
//! assert_eq!(engine.pending_faults(), 1);
//! ```

pub mod config;
pub mod corrupt;
pub mod engine;
pub mod outcome;
pub mod queues;
pub mod record;
pub mod spec;
pub mod thread;
pub mod vdd;

pub use config::{FaultConfig, ParseFaultError};
pub use engine::{AbortToken, EngineConfig, FireDistance, GemFiEngine};
pub use outcome::Outcome;
pub use record::InjectionRecord;
pub use spec::{
    CacheLevel, FaultBehavior, FaultLocation, FaultSpec, FaultTiming, MbuPattern, MemTarget, Stage,
};
pub use vdd::VddModel;
