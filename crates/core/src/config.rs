//! Parsing fault-configuration input files (the paper's Listing 1 format).
//!
//! "On GemFI invocation the user also provides — at command line — an input
//! file specifying the faults to be injected in the upcoming simulation.
//! Each line of the input file describes the attributes of a single fault."
//! (Sec. III-A.) Blank lines and `#` comments are ignored.

use crate::spec::{
    CacheLevel, FaultBehavior, FaultLocation, FaultSpec, FaultTiming, MbuPattern, MemTarget,
    OCC_PERMANENT,
};
use gemfi_isa::SpecialReg;
use std::fmt;
use std::str::FromStr;

/// A parse error with the offending line number (1-based) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseFaultError {}

/// A parsed fault-injection configuration: the contents of one input file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultConfig {
    faults: Vec<FaultSpec>,
}

impl FaultConfig {
    /// An empty configuration (no faults — the Fig. 7 overhead setup).
    pub fn empty() -> FaultConfig {
        FaultConfig::default()
    }

    /// A configuration from already-built specs (campaign generators).
    pub fn from_specs(faults: Vec<FaultSpec>) -> FaultConfig {
        FaultConfig { faults }
    }

    /// Reads a configuration file.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`ParseFaultError`] wrapped as `InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<FaultConfig> {
        let text = std::fs::read_to_string(path)?;
        text.parse().map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Writes the configuration in the line format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = String::new();
        for f in &self.faults {
            text.push_str(&f.to_string());
            text.push('\n');
        }
        std::fs::write(path, text)
    }

    /// The fault specs, in input order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether there are no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl FromIterator<FaultSpec> for FaultConfig {
    fn from_iter<I: IntoIterator<Item = FaultSpec>>(iter: I) -> FaultConfig {
        FaultConfig { faults: iter.into_iter().collect() }
    }
}

impl Extend<FaultSpec> for FaultConfig {
    fn extend<I: IntoIterator<Item = FaultSpec>>(&mut self, iter: I) {
        self.faults.extend(iter);
    }
}

impl FromStr for FaultConfig {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<FaultConfig, ParseFaultError> {
        let mut faults = Vec::new();
        for (i, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            faults.push(
                parse_line(line).map_err(|message| ParseFaultError { line: i + 1, message })?,
            );
        }
        Ok(FaultConfig { faults })
    }
}

fn parse_u64(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        // Permit `_` digit separators, as Rust literals do.
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|e| format!("bad hex number `{s}`: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
    }
}

fn parse_line(line: &str) -> Result<FaultSpec, String> {
    let mut tokens = line.split_whitespace();
    let kind = tokens.next().ok_or("empty line")?;

    let mut timing = None;
    let mut behavior = None;
    let mut thread = None;
    let mut core = None;
    let mut occurrences = 1;
    let mut module: Vec<&str> = Vec::new();

    for tok in tokens {
        if let Some(v) = tok.strip_prefix("Inst:") {
            timing = Some(FaultTiming::Instructions(parse_u64(v)?));
        } else if let Some(v) = tok.strip_prefix("Tick:") {
            timing = Some(FaultTiming::Ticks(parse_u64(v)?));
        } else if let Some(v) = tok.strip_prefix("Flip:") {
            let bit = parse_u64(v)?;
            if bit > 63 {
                return Err(format!("flip bit {bit} out of range 0–63"));
            }
            behavior = Some(FaultBehavior::Flip(bit as u8));
        } else if let Some(v) = tok.strip_prefix("Xor:") {
            behavior = Some(FaultBehavior::Xor(parse_u64(v)?));
        } else if let Some(v) = tok.strip_prefix("Set:") {
            behavior = Some(FaultBehavior::Set(parse_u64(v)?));
        } else if tok == "AllZero" {
            behavior = Some(FaultBehavior::AllZero);
        } else if tok == "AllOne" {
            behavior = Some(FaultBehavior::AllOne);
        } else if tok == "Skip" {
            behavior = Some(FaultBehavior::Skip);
        } else if tok == "InvertBranch" {
            behavior = Some(FaultBehavior::InvertBranch);
        } else if let Some(v) = tok.strip_prefix("Opcode:") {
            let op = parse_u64(v)?;
            if op > 0x3f {
                return Err(format!("opcode {op:#x} out of 6-bit range"));
            }
            behavior = Some(FaultBehavior::Opcode(op as u8));
        } else if let Some(v) = tok.strip_prefix("Threadid:") {
            thread = Some(parse_u64(v)? as u32);
        } else if let Some(v) = tok.strip_prefix("occ:") {
            occurrences = if v == "perm" { OCC_PERMANENT } else { parse_u64(v)? };
            if occurrences == 0 {
                return Err("occ:0 would never fire".to_string());
            }
        } else if let Some(v) = tok.strip_prefix("system.cpu") {
            core = Some(v.parse::<usize>().map_err(|e| format!("bad core `{tok}`: {e}"))?);
        } else {
            module.push(tok);
        }
    }

    let timing = timing.ok_or("missing Inst:/Tick: attribute")?;
    let behavior = behavior.ok_or("missing behavior (Flip:/Xor:/Set:/AllZero/AllOne)")?;
    let thread = thread.ok_or("missing Threadid: attribute")?;
    let core = core.ok_or("missing system.cpuN attribute")?;

    let location = match kind {
        "RegisterInjectedFault" => match module.as_slice() {
            ["int", n] => {
                let reg = parse_u64(n)? as u8;
                if reg > 31 {
                    return Err(format!("integer register {reg} out of range"));
                }
                FaultLocation::IntReg { core, reg }
            }
            ["float", n] => {
                let reg = parse_u64(n)? as u8;
                if reg > 31 {
                    return Err(format!("float register {reg} out of range"));
                }
                FaultLocation::FpReg { core, reg }
            }
            ["special", name] => {
                let reg = match *name {
                    "pc" => SpecialReg::Pc,
                    "pcbb" => SpecialReg::PcbBase,
                    "psr" => SpecialReg::Psr,
                    "excaddr" => SpecialReg::ExcAddr,
                    other => return Err(format!("unknown special register `{other}`")),
                };
                FaultLocation::SpecialReg { core, reg }
            }
            other => return Err(format!("bad register module spec {other:?}")),
        },
        "FetchedInstructionInjectedFault" => FaultLocation::Fetch { core },
        "DecodeStageInjectedFault" => FaultLocation::Decode { core },
        "ExecutionStageInjectedFault" => FaultLocation::Execute { core },
        "PCInjectedFault" => FaultLocation::Pc { core },
        "MemoryInjectedFault" => {
            let target = match module.as_slice() {
                ["load"] | ["mem", "load"] => MemTarget::Load,
                ["store"] | ["mem", "store"] => MemTarget::Store,
                [] | ["any"] | ["mem"] | ["mem", "any"] => MemTarget::Any,
                other => return Err(format!("bad memory target {other:?}")),
            };
            FaultLocation::Mem { core, target }
        }
        "CacheInjectedFault" => parse_cache_location(core, &module)?,
        other => return Err(format!("unknown fault kind `{other}`")),
    };

    // Security-style behaviors are control-flow transforms bound to a
    // specific pipeline point; anywhere else the spec is meaningless and
    // rejected up front rather than silently inert.
    match behavior {
        FaultBehavior::Skip | FaultBehavior::Opcode(_)
            if !matches!(location, FaultLocation::Fetch { .. }) =>
        {
            return Err(format!("{behavior} is only valid on FetchedInstructionInjectedFault"));
        }
        FaultBehavior::InvertBranch if !matches!(location, FaultLocation::Execute { .. }) => {
            return Err("InvertBranch is only valid on ExecutionStageInjectedFault".into());
        }
        _ => {}
    }

    Ok(FaultSpec { location, thread, timing, behavior, occurrences })
}

fn parse_cache_location(core: usize, module: &[&str]) -> Result<FaultLocation, String> {
    let (level_tok, rest) = module.split_first().ok_or("cache fault missing level (l1i/l1d/l2)")?;
    let level: CacheLevel =
        level_tok.parse().map_err(|()| format!("unknown cache level `{level_tok}`"))?;
    let mut array = None; // "data" | "tag"
    let mut set = None;
    let mut way = None;
    let mut pattern = None;
    for tok in rest {
        if *tok == "data" || *tok == "tag" {
            array = Some(*tok);
        } else if let Some(v) = tok.strip_prefix("set:") {
            set = Some(parse_u64(v)? as u32);
        } else if let Some(v) = tok.strip_prefix("way:") {
            way = Some(parse_u64(v)? as u32);
        } else if let Some(v) = tok.strip_prefix("mbu:") {
            pattern = Some(parse_mbu(v)?);
        } else {
            return Err(format!("bad cache module token `{tok}`"));
        }
    }
    let way = way.ok_or("cache fault missing way:N")?;
    match (array, set) {
        (Some("data"), Some(set)) => Ok(FaultLocation::CacheData {
            core,
            level,
            set,
            way,
            pattern: pattern.unwrap_or(MbuPattern::Single),
        }),
        (Some("tag"), Some(set)) => {
            if pattern.is_some() {
                return Err("tag faults corrupt the whole tag; drop the mbu: token".into());
            }
            Ok(FaultLocation::CacheTag { core, level, set, way })
        }
        (Some(_), None) => Err("cache line fault missing set:N".into()),
        // Unreachable: the token loop only ever stores "data"/"tag".
        (Some(other), Some(_)) => Err(format!("unknown cache array `{other}`")),
        (None, None) => Ok(FaultLocation::CacheWay {
            core,
            level,
            way,
            pattern: pattern.unwrap_or(MbuPattern::Single),
        }),
        (None, Some(_)) => Err("set:N needs a data/tag array token (or drop it for a whole-way \
                                fault)"
            .into()),
    }
}

fn parse_mbu(v: &str) -> Result<MbuPattern, String> {
    let parts: Vec<&str> = v.split(':').collect();
    match parts.as_slice() {
        ["single"] => Ok(MbuPattern::Single),
        ["adj", bit, width] => {
            Ok(MbuPattern::Adjacent { bit: parse_u64(bit)? as u8, width: parse_u64(width)? as u8 })
        }
        ["row", r] => Ok(MbuPattern::Row(parse_u64(r)? as u8)),
        ["col", c] => Ok(MbuPattern::Column(parse_u64(c)? as u8)),
        _ => Err(format!("bad MBU pattern `mbu:{v}` (single | adj:B:W | row:R | col:C)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_listing1_line() {
        let cfg: FaultConfig =
            "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1"
                .parse()
                .unwrap();
        assert_eq!(cfg.len(), 1);
        let f = cfg.faults()[0];
        assert_eq!(f.location, FaultLocation::IntReg { core: 1, reg: 1 });
        assert_eq!(f.timing, FaultTiming::Instructions(2457));
        assert_eq!(f.behavior, FaultBehavior::Flip(21));
        assert_eq!(f.thread, 0);
        assert_eq!(f.occurrences, 1);
    }

    #[test]
    fn parses_every_location_kind() {
        let text = "
# a comment
RegisterInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1 float 7
RegisterInjectedFault Tick:50 AllZero Threadid:1 system.cpu0 occ:perm special psr
FetchedInstructionInjectedFault Inst:3 Flip:26 Threadid:0 system.cpu0 occ:1
DecodeStageInjectedFault Inst:4 Flip:2 Threadid:0 system.cpu0 occ:1
ExecutionStageInjectedFault Inst:5 Xor:0xff Threadid:0 system.cpu0 occ:2
PCInjectedFault Inst:6 Set:0x10000 Threadid:0 system.cpu0 occ:1
MemoryInjectedFault Inst:7 Flip:63 Threadid:0 system.cpu0 occ:1 load
MemoryInjectedFault Inst:8 AllOne Threadid:0 system.cpu0 occ:1 store
";
        let cfg: FaultConfig = text.parse().unwrap();
        assert_eq!(cfg.len(), 8);
        assert_eq!(cfg.faults()[1].occurrences, OCC_PERMANENT);
        assert_eq!(
            cfg.faults()[6].location,
            FaultLocation::Mem { core: 0, target: MemTarget::Load }
        );
    }

    #[test]
    fn error_carries_line_number() {
        let err =
            "RegisterInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1 int 1\nbogus line"
                .parse::<FaultConfig>()
                .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_missing_attributes() {
        for bad in [
            "RegisterInjectedFault Flip:0 Threadid:0 system.cpu0 int 1", // no timing
            "RegisterInjectedFault Inst:1 Threadid:0 system.cpu0 int 1", // no behavior
            "RegisterInjectedFault Inst:1 Flip:0 system.cpu0 int 1",     // no thread
            "RegisterInjectedFault Inst:1 Flip:0 Threadid:0 int 1",      // no core
            "RegisterInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 int 45", // bad reg
            "RegisterInjectedFault Inst:1 Flip:99 Threadid:0 system.cpu0 int 1", // bad bit
            "NonsenseFault Inst:1 Flip:0 Threadid:0 system.cpu0",
        ] {
            assert!(bad.parse::<FaultConfig>().is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_cache_and_security_faults() {
        let text = "
CacheInjectedFault Inst:10 Flip:3 Threadid:0 system.cpu0 occ:perm l1d data set:44 way:1 mbu:row:2
CacheInjectedFault Inst:11 AllZero Threadid:0 system.cpu0 occ:1 l1i tag set:3 way:0
CacheInjectedFault Tick:500 AllOne Threadid:0 system.cpu0 occ:perm l2 way:7 mbu:col:0
FetchedInstructionInjectedFault Inst:12 Skip Threadid:0 system.cpu0 occ:1
FetchedInstructionInjectedFault Inst:13 Opcode:0x1a Threadid:0 system.cpu0 occ:1
ExecutionStageInjectedFault Inst:14 InvertBranch Threadid:0 system.cpu0 occ:1
";
        let cfg: FaultConfig = text.parse().unwrap();
        assert_eq!(cfg.len(), 6);
        assert_eq!(
            cfg.faults()[0].location,
            FaultLocation::CacheData {
                core: 0,
                level: CacheLevel::L1D,
                set: 44,
                way: 1,
                pattern: MbuPattern::Row(2),
            }
        );
        assert_eq!(cfg.faults()[0].occurrences, OCC_PERMANENT);
        assert_eq!(
            cfg.faults()[1].location,
            FaultLocation::CacheTag { core: 0, level: CacheLevel::L1I, set: 3, way: 0 }
        );
        assert_eq!(
            cfg.faults()[2].location,
            FaultLocation::CacheWay {
                core: 0,
                level: CacheLevel::L2,
                way: 7,
                pattern: MbuPattern::Column(0),
            }
        );
        assert_eq!(cfg.faults()[3].behavior, FaultBehavior::Skip);
        assert_eq!(cfg.faults()[4].behavior, FaultBehavior::Opcode(0x1a));
        assert_eq!(cfg.faults()[5].behavior, FaultBehavior::InvertBranch);
    }

    #[test]
    fn new_models_display_parse_roundtrip() {
        let text = "
CacheInjectedFault Inst:10 Flip:3 Threadid:0 system.cpu0 occ:perm l1d data set:44 way:1 mbu:adj:4:3
CacheInjectedFault Inst:11 AllZero Threadid:1 system.cpu0 occ:1 l2 tag set:900 way:5
CacheInjectedFault Tick:500 Xor:0xf0 Threadid:0 system.cpu1 occ:3 l1i way:1 mbu:single
FetchedInstructionInjectedFault Inst:12 Skip Threadid:0 system.cpu0 occ:1
FetchedInstructionInjectedFault Inst:13 Opcode:0x3f Threadid:0 system.cpu0 occ:perm
ExecutionStageInjectedFault Inst:14 InvertBranch Threadid:0 system.cpu0 occ:2
";
        let cfg: FaultConfig = text.parse().unwrap();
        for f in cfg.faults() {
            let reparsed: FaultConfig = f.to_string().parse().unwrap();
            assert_eq!(reparsed.faults()[0], *f, "{f}");
        }
    }

    #[test]
    fn rejects_malformed_new_model_specs() {
        for bad in [
            // Security behaviors outside their pipeline point.
            "RegisterInjectedFault Inst:1 Skip Threadid:0 system.cpu0 int 1",
            "ExecutionStageInjectedFault Inst:1 Skip Threadid:0 system.cpu0",
            "FetchedInstructionInjectedFault Inst:1 InvertBranch Threadid:0 system.cpu0",
            "MemoryInjectedFault Inst:1 Opcode:0x1 Threadid:0 system.cpu0 load",
            "CacheInjectedFault Inst:1 Skip Threadid:0 system.cpu0 l1d data set:1 way:0",
            // Opcode out of the 6-bit field.
            "FetchedInstructionInjectedFault Inst:1 Opcode:0x40 Threadid:0 system.cpu0",
            // Cache specs with missing/contradictory geometry.
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 data set:1 way:0",
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 l4 data set:1 way:0",
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 l1d data set:1",
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 l1d data way:0",
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 l1d set:1 way:0",
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 l1d tag set:1 way:0 mbu:row:1",
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 l1d data set:1 way:0 mbu:blob",
            "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 l1d data set:1 way:0 bogus",
        ] {
            assert!(bad.parse::<FaultConfig>().is_err(), "{bad}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let text = "ExecutionStageInjectedFault Inst:5 Xor:0xff Threadid:2 system.cpu0 occ:2";
        let cfg: FaultConfig = text.parse().unwrap();
        let printed = cfg.faults()[0].to_string();
        let reparsed: FaultConfig = printed.parse().unwrap();
        assert_eq!(reparsed.faults()[0], cfg.faults()[0]);
    }

    #[test]
    fn file_roundtrip() {
        let cfg: FaultConfig =
            "PCInjectedFault Inst:6 Set:0x10000 Threadid:0 system.cpu0 occ:1".parse().unwrap();
        let dir = std::env::temp_dir().join("gemfi-cfg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.txt");
        cfg.save(&path).unwrap();
        assert_eq!(FaultConfig::load(&path).unwrap(), cfg);
        std::fs::remove_file(&path).ok();
    }
}
