//! Adaptive versus fixed-n campaign sizing on the DCT workload: the
//! sequential engine stops each (workload x location) cell as soon as every
//! outcome-rate Wilson CI is tighter than the target half-width, while the
//! fixed-n arm spends the worst-case p=0.5 Leveugle sizing everywhere.
//!
//! ```text
//! cargo run --release --example adaptive_campaign
//! ```

use gemfi_campaign::fork::ForkConfig;
use gemfi_campaign::{
    leveugle_sample_size, prepare_workload, run_campaign_adaptive, AdaptiveConfig, CellKind,
    FaultSampler, RunnerConfig, Z_95,
};
use gemfi_cpu::CpuKind;
use gemfi_workloads::dct::Dct;
use gemfi_workloads::Workload;

fn main() {
    let workload = Dct { width: 8, height: 8 };
    println!("preparing {} (checkpoint + golden run)…", workload.name());
    let prepared = prepare_workload(&workload).expect("prepares");

    let cells: Vec<CellKind> = ["l1i-cache", "l1d-cache", "l2-cache", "fp-reg", "pc", "decode"]
        .iter()
        .map(|l| CellKind::parse(l).expect("known label"))
        .collect();
    let config = AdaptiveConfig { cells: cells.clone(), ..AdaptiveConfig::default() };
    println!(
        "  target: ±{:.0}% outcome-rate CIs at z={Z_95}, min {} samples/cell\n",
        config.ci_halfwidth * 100.0,
        config.min_n
    );

    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };
    let outcome = run_campaign_adaptive(
        &prepared,
        &workload,
        &runner,
        Some(&ForkConfig::default()),
        &config,
        9,
    );
    println!("{outcome}");

    // What would the fixed-n ablation baseline have spent? The worst-case
    // p=0.5 Leveugle sizing for every cell at the same target.
    let sampler = FaultSampler::new(9, prepared.stage_events, 0, 0);
    let fixed: u64 = cells
        .iter()
        .map(|kind| {
            let population = kind.population(&sampler);
            leveugle_sample_size(population, config.ci_halfwidth, Z_95, 0.5)
        })
        .sum();
    println!(
        "\nfixed-n at the same target: {fixed} experiments; sequential used {} ({:.1}x fewer). \
         Note the decode cell: its outcome rates sit near 50%, so the sequential arm \
         correctly spends the full worst-case sizing there — the savings all come from \
         the lopsided cells.",
        outcome.experiments,
        fixed as f64 / outcome.experiments as f64
    );
}
