//! The paper's future-work experiment (Sec. VII): couple supply voltage to
//! the fault rate and study "the limits of aggressively reducing power
//! consumption at the expense of correctness, yet within the error
//! tolerance of applications".
//!
//! For each Vdd point, the exponential low-voltage upset model produces an
//! expected fault count for the kernel; that many register bit-flips are
//! sampled and injected, and the acceptable-outcome fraction is reported
//! next to the (quadratic) relative power.
//!
//! ```text
//! cargo run --release --example vdd_scaling
//! ```

use gemfi::VddModel;
use gemfi_campaign::{
    prepare_workload, run_experiment_multi, FaultSampler, LocationClass, RunnerConfig,
};
use gemfi_cpu::CpuKind;
use gemfi_workloads::pi::MonteCarloPi;

fn main() {
    let workload = MonteCarloPi { points: 300, init_spins: 500, ..MonteCarloPi::default() };
    let prepared = prepare_workload(&workload).expect("prepares");
    let kernel_cycles = prepared.kernel_ticks;
    // 64 registers × 64 bits of state exposed to low-voltage upsets.
    let state_bits = 64 * 64;

    let model = VddModel::new(); // p_nom = 1e-12 at 1.0 V
    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };
    let trials = 12;

    println!("Vdd scaling on pi (kernel = {} cycles)\n", kernel_cycles);
    println!(
        "{:>6} {:>10} {:>14} {:>12} {:>12}",
        "vdd", "power", "E[upsets]", "acceptable%", "crash%"
    );
    for step in 0..=8 {
        let vdd = 1.0 - 0.05 * step as f64;
        let expected = model.expected_upsets(vdd, state_bits, kernel_cycles);
        // Round the expectation to a per-run fault count; saturate so the
        // collapsed regime stays cheap to simulate (beyond ~100 upsets the
        // outcome is the same).
        let faults_per_run = (expected.round() as usize).min(128);
        let mut acceptable = 0;
        let mut crashed = 0;
        let mut sampler = FaultSampler::new(0xdd + step as u64, prepared.stage_events, 0, 0);
        for _ in 0..trials {
            let specs: Vec<_> = (0..faults_per_run)
                .map(|i| {
                    sampler.sample(if i % 2 == 0 {
                        LocationClass::IntReg
                    } else {
                        LocationClass::FpReg
                    })
                })
                .collect();
            if specs.is_empty() {
                acceptable += 1;
                continue;
            }
            // Inject this run's whole fault population at once.
            let result = run_experiment_multi(&prepared, &workload, &specs, &runner);
            match result.outcome {
                o if o.is_acceptable() => acceptable += 1,
                gemfi::Outcome::Crashed => crashed += 1,
                _ => {}
            }
        }
        println!(
            "{:>6.2} {:>9.0}% {:>14.2} {:>11.0}% {:>11.0}%",
            vdd,
            model.relative_power(vdd) * 100.0,
            expected,
            acceptable as f64 / trials as f64 * 100.0,
            crashed as f64 / trials as f64 * 100.0,
        );
    }
    println!("\nshape: power falls quadratically; correctness collapses once E[upsets] ≫ 1");
}
