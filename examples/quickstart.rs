//! Quickstart: assemble a guest program, describe a fault in the paper's
//! input-file syntax (Listing 1), run it under GemFI, and inspect what got
//! corrupted.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_asm::{Assembler, Reg};
use gemfi_sim::{Machine, MachineConfig, RunExit};

fn main() {
    // A little guest program, structured like the paper's Listing 2:
    // activate fault injection, run the kernel, deactivate, exit with the
    // result. The kernel sums 1..=100 (expected 5050).
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.li(Reg::R1, 0); // sum
    a.li(Reg::R2, 1); // i
    a.li(Reg::R3, 100);
    a.label("loop");
    a.addq(Reg::R1, Reg::R2, Reg::R1);
    a.addq_lit(Reg::R2, 1, Reg::R2);
    a.cmple(Reg::R2, Reg::R3, Reg::R4);
    a.bne(Reg::R4, "loop");
    a.fi_activate(0);
    a.mov(Reg::R1, Reg::A0);
    a.pal(gemfi_isa::PalFunc::Exit);
    let program = a.finish().expect("assembles");

    // A fault description in the Listing 1 input-file format: flip bit 5 of
    // integer register r1 (the running sum) when the thread commits its
    // 150th instruction.
    let faults: FaultConfig =
        "RegisterInjectedFault Inst:150 Flip:5 Threadid:0 system.cpu0 occ:1 int 1"
            .parse()
            .expect("valid fault line");
    println!("fault configuration:");
    for f in faults.faults() {
        println!("  {f}");
    }

    // Fault-free reference.
    let mut golden =
        Machine::boot(MachineConfig::default(), &program, gemfi_cpu::NoopHooks).expect("boots");
    let golden_exit = golden.run();
    println!("\nfault-free run: {golden_exit}");

    // Fault-injected run on the out-of-order model.
    let config = MachineConfig { cpu: gemfi_cpu::CpuKind::O3, ..MachineConfig::default() };
    let mut machine = Machine::boot(config, &program, GemFiEngine::new(faults)).expect("boots");
    let exit = machine.run();
    println!("fault-injected run: {exit}");

    println!("\ninjection records (post-mortem correlation, Sec. IV-B):");
    for record in machine.hooks().records() {
        println!("  {record}");
        println!(
            "    consumed={} overwritten={} -> propagated={}",
            record.consumed,
            record.overwritten,
            record.propagated()
        );
    }

    match (golden_exit, exit) {
        (RunExit::Halted(g), RunExit::Halted(f)) if g == f => {
            println!("\noutcome: masked — the corrupted bit did not change the sum")
        }
        (RunExit::Halted(g), RunExit::Halted(f)) => {
            println!("\noutcome: silent data corruption — {g} became {f}")
        }
        (_, other) => println!("\noutcome: crash ({other})"),
    }
}
