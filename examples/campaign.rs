//! A miniature fault-injection campaign (the Sec. IV-B methodology) on the
//! Monte Carlo PI workload: checkpoint, golden run, uniform fault sampling,
//! O3 injection with the atomic fast-forward, and outcome classification.
//!
//! ```text
//! cargo run --release --example campaign
//! ```

use gemfi_campaign::{
    leveugle_sample_size, prepare_workload, run_experiment, FaultSampler, LocationClass,
    OutcomeTable, RunnerConfig,
};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::Workload;

fn main() {
    let workload = MonteCarloPi { points: 400, init_spins: 2_000, ..MonteCarloPi::default() };
    println!("preparing {} (checkpoint + golden run)…", workload.name());
    let prepared = prepare_workload(&workload).expect("prepares");
    println!(
        "  fault space: {:?} events/stage, kernel {} ticks",
        prepared.stage_events, prepared.kernel_ticks
    );

    let mut sampler = FaultSampler::new(0xca3_9a19, prepared.stage_events, 0, 0);
    let population = sampler.total_population();
    let full = leveugle_sample_size(population, 0.01, gemfi_campaign::stats::Z_99, 0.5);
    println!("  population {population}; a paper-grade campaign (99%/1%) would need {full} runs");

    let per_class = 12;
    println!("\nrunning {per_class} experiments per location class…\n");
    let runner = RunnerConfig::default();
    println!(
        "{:<9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "class", "crash", "nonprop", "strict", "correct", "sdc"
    );
    for class in LocationClass::ALL {
        let mut table = OutcomeTable::new();
        for _ in 0..per_class {
            let spec = sampler.sample(class);
            let result = run_experiment(&prepared, &workload, spec, &runner);
            table.add(result.outcome);
        }
        println!("{:<9} {}", class.to_string(), table);
    }
}
