//! A Fig. 5-style outcome campaign over the *expanded* fault-model catalog:
//! cache-hierarchy lesions (L1I / L1D / L2 data, tag, and way arrays, with
//! MBU spatial patterns and transient-through-stuck-at persistence) and
//! security-style behaviors (instruction skip, opcode replacement,
//! branch-condition inversion), classified with the same outcome taxonomy
//! as the paper's register/pipeline campaign.
//!
//! The DCT workload is used because its kernel is memory-rich, so cache
//! lesions have live lines to damage.
//!
//! ```text
//! cargo run --release --example fault_models_campaign
//! ```

use gemfi::{CacheLevel, FaultBehavior, FaultSpec};
use gemfi_campaign::{prepare_workload, run_experiment, FaultSampler, OutcomeTable, RunnerConfig};
use gemfi_workloads::dct::Dct;
use gemfi_workloads::Workload;

/// Draws security specs until one carries the wanted behavior, so each
/// behavior gets its own table row.
fn sample_security_kind(sampler: &mut FaultSampler, want: fn(&FaultBehavior) -> bool) -> FaultSpec {
    loop {
        let spec = sampler.sample_security();
        if want(&spec.behavior) {
            return spec;
        }
    }
}

fn main() {
    let workload = Dct::default();
    println!("preparing {} (checkpoint + golden run)…", workload.name());
    let prepared = prepare_workload(&workload).expect("prepares");
    println!(
        "  fault space: {:?} events/stage, kernel {} ticks",
        prepared.stage_events, prepared.kernel_ticks
    );

    let per_family = 40;
    let mut sampler = FaultSampler::new(0x5eed_cafe, prepared.stage_events, 0, 0);
    let runner = RunnerConfig::default();

    println!("\nrunning {per_family} experiments per fault-model family…\n");
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "family", "crash", "nonprop", "strict", "correct", "sdc", "infra"
    );

    type Draw = Box<dyn FnMut(&mut FaultSampler) -> FaultSpec>;
    let families: Vec<(&str, Draw)> = vec![
        ("l1i-cache", Box::new(|s: &mut FaultSampler| s.sample_cache(CacheLevel::L1I))),
        ("l1d-cache", Box::new(|s: &mut FaultSampler| s.sample_cache(CacheLevel::L1D))),
        ("l2-cache", Box::new(|s: &mut FaultSampler| s.sample_cache(CacheLevel::L2))),
        (
            "skip",
            Box::new(|s: &mut FaultSampler| {
                sample_security_kind(s, |b| matches!(b, FaultBehavior::Skip))
            }),
        ),
        (
            "opcode",
            Box::new(|s: &mut FaultSampler| {
                sample_security_kind(s, |b| matches!(b, FaultBehavior::Opcode(_)))
            }),
        ),
        (
            "invert-branch",
            Box::new(|s: &mut FaultSampler| {
                sample_security_kind(s, |b| matches!(b, FaultBehavior::InvertBranch))
            }),
        ),
    ];

    for (name, mut draw) in families {
        let mut table = OutcomeTable::new();
        for _ in 0..per_family {
            let spec = draw(&mut sampler);
            let result = run_experiment(&prepared, &workload, spec, &runner);
            table.add(result.outcome);
        }
        println!("{name:<14} {table}");
    }

    // The random rows sample the paper's transient single-bit upset model,
    // where spatial masking dominates (a random slot rarely intersects the
    // kernel's resident lines before the lesion heals). The stuck-at corner
    // is the opposite extreme: a permanent all-one way-0 lesion sits under
    // every cold fill.
    println!("\nstuck-at corner (way 0, AllOne, occ:perm, fired mid-kernel):\n");
    for level in CacheLevel::ALL {
        let spec = FaultSpec {
            location: gemfi::FaultLocation::CacheWay {
                core: 0,
                level,
                way: 0,
                pattern: gemfi::MbuPattern::Single,
            },
            thread: 0,
            timing: gemfi::FaultTiming::Instructions(
                prepared.stage_events[spec_stage_events_index(level)] / 2,
            ),
            behavior: FaultBehavior::AllOne,
            occurrences: gemfi::spec::OCC_PERMANENT,
        };
        let result = run_experiment(&prepared, &workload, spec, &runner);
        println!("{:<14} {:?} ({})", format!("{level}-way0"), result.outcome, result.exit);
    }
}

/// The stage-events slot a cache level's timing counts against (L1I fires
/// on fetch events; L1D/L2 on memory events).
fn spec_stage_events_index(level: CacheLevel) -> usize {
    match level {
        CacheLevel::L1I => 0,
        CacheLevel::L1D | CacheLevel::L2 => 3,
    }
}
