//! Checkpoint fast-forwarding and the network-of-workstations campaign
//! protocol (Sec. III-D/III-E): runs the same experiment set serially from
//! the checkpoint and over a spool-directory worker pool, then compares.
//!
//! ```text
//! cargo run --release --example checkpoint_now
//! ```

use gemfi_campaign::{
    now::{run_campaign_now, NowConfig},
    prepare_workload, run_experiment, FaultSampler, RunnerConfig,
};
use gemfi_workloads::knapsack::Knapsack;
use gemfi_workloads::Workload;
use std::time::Instant;

fn main() {
    let workload = Knapsack { generations: 10, ..Knapsack::default() };
    let prepared = prepare_workload(&workload).expect("prepares");
    println!(
        "{}: initialization {} ticks, kernel {} ticks (checkpointing skips the former)",
        workload.name(),
        prepared.boot_ticks,
        prepared.kernel_ticks
    );

    let mut sampler = FaultSampler::new(7, prepared.stage_events, 0, 0);
    let specs: Vec<_> = (0..16).map(|_| sampler.sample_any()).collect();
    let runner = RunnerConfig::default();

    // Serial, checkpoint-fast-forwarded.
    let t = Instant::now();
    let serial: Vec<_> =
        specs.iter().map(|s| run_experiment(&prepared, &workload, *s, &runner).outcome).collect();
    println!("\nserial (checkpointed): {:?} in {:.2?}", count(&serial), t.elapsed());

    // The NoW protocol over a spool directory.
    let share = std::env::temp_dir().join(format!("gemfi-example-now-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&share);
    let cfg = NowConfig::new(3, 2, &share);
    let t = Instant::now();
    let (table, results, report) =
        run_campaign_now(&prepared, &workload, &specs, &runner, &cfg).expect("share usable");
    println!(
        "NoW ({} ws x {} slots): {table} in {:.2?}",
        cfg.workstations,
        cfg.slots_per_workstation,
        t.elapsed()
    );
    println!("  per-workstation load: {:?}", report.per_workstation);

    let parallel: Vec<_> = results.iter().map(|r| r.outcome).collect();
    assert_eq!(serial, parallel, "the two execution modes must agree");
    println!("  serial and NoW outcomes agree on all {} experiments", specs.len());
    std::fs::remove_dir_all(&share).ok();
}

fn count(outcomes: &[gemfi::Outcome]) -> gemfi_campaign::OutcomeTable {
    outcomes.iter().copied().collect()
}
